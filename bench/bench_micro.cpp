// Micro-benchmarks (google-benchmark) for the hot primitives of the
// miner: support counting, median partitioning, chi-square testing,
// prune-table lookups and itemset covers — plus a fused-vs-naive
// split+count kernel comparison on the scaling dataset that records
// machine-readable metrics in BENCH_micro.json.
//
// Usage: bench_micro [--smoke] [google-benchmark flags]
//   --smoke  small dataset, few repetitions, skip the google-benchmark
//            suite — a CI-speed check that still writes the JSON.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "bench/common.h"
#include "core/miner.h"
#include "core/optimistic.h"
#include "core/pruning.h"
#include "core/space.h"
#include "core/split_kernel.h"
#include "core/support.h"
#include "data/chunks.h"
#include "data/group_info.h"
#include "data/index.h"
#include "data/sort_index.h"
#include "data/spill.h"
#include "parallel/sharded_miner.h"
#include "stats/chi_squared.h"
#include "stats/fisher.h"
#include "stream/window_miner.h"
#include "synth/scaling.h"
#include "synth/uci_like.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace sdadcs {
namespace {

struct Fixture {
  synth::NamedDataset nd;
  data::GroupInfo gi;
};

const Fixture& SharedFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture{synth::MakeAdultLike(), {}};
    auto gi = data::GroupInfo::CreateForValues(
        f->nd.db, *f->nd.db.schema().IndexOf("education"), f->nd.groups);
    SDADCS_CHECK(gi.ok());
    f->gi = std::move(gi).value();
    return f;
  }();
  return *fixture;
}

void BM_CountMatchesOneInterval(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  int age = *f.nd.db.schema().IndexOf("age");
  core::Itemset itemset({core::Item::Interval(age, 30.0, 50.0)});
  for (auto _ : state) {
    auto gc = core::CountMatches(f.nd.db, f.gi, itemset,
                                 f.gi.base_selection());
    benchmark::DoNotOptimize(gc.counts.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.gi.total()));
}
BENCHMARK(BM_CountMatchesOneInterval);

void BM_CountMatchesThreeItems(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  int age = *f.nd.db.schema().IndexOf("age");
  int hours = *f.nd.db.schema().IndexOf("hours_per_week");
  int occ = *f.nd.db.schema().IndexOf("occupation");
  core::Itemset itemset({core::Item::Interval(age, 30.0, 50.0),
                         core::Item::Interval(hours, 35.0, 60.0),
                         core::Item::Categorical(occ, 0)});
  for (auto _ : state) {
    auto gc = core::CountMatches(f.nd.db, f.gi, itemset,
                                 f.gi.base_selection());
    benchmark::DoNotOptimize(gc.counts.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.gi.total()));
}
BENCHMARK(BM_CountMatchesThreeItems);

void BM_MedianInSelection(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  int age = *f.nd.db.schema().IndexOf("age");
  for (auto _ : state) {
    double m = data::MedianInSelection(f.nd.db, age, f.gi.base_selection());
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MedianInSelection);

void BM_FindCombsTwoAxes(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  int age = *f.nd.db.schema().IndexOf("age");
  int hours = *f.nd.db.schema().IndexOf("hours_per_week");
  core::Space space;
  space.bounds = {{age, 18.0, 90.0}, {hours, 0.0, 99.0}};
  space.rows = f.gi.base_selection();
  std::vector<double> medians = core::PartitionMedians(f.nd.db, space);
  for (auto _ : state) {
    auto cells = core::FindCombs(f.nd.db, space, medians);
    benchmark::DoNotOptimize(cells.data());
  }
}
BENCHMARK(BM_FindCombsTwoAxes);

void BM_ChiSquaredPresence(benchmark::State& state) {
  std::vector<double> counts = {321.0, 1743.0};
  std::vector<double> sizes = {594.0, 8025.0};
  for (auto _ : state) {
    auto res = stats::ChiSquaredPresenceTest(counts, sizes);
    benchmark::DoNotOptimize(res.p_value);
  }
}
BENCHMARK(BM_ChiSquaredPresence);

void BM_ChiSquaredCritical(benchmark::State& state) {
  for (auto _ : state) {
    double c = stats::ChiSquaredCritical(0.05, 1);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ChiSquaredCritical);

void BM_FisherExactSmall(benchmark::State& state) {
  for (auto _ : state) {
    double p = stats::FisherExactTwoSided(8, 2, 1, 9);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_FisherExactSmall);

void BM_OptimisticEstimate(benchmark::State& state) {
  core::OptimisticInput in;
  in.db_size = 8619;
  in.level = 2;
  in.num_continuous = 2;
  in.counts = {120.0, 900.0};
  in.space_total = 1020.0;
  in.group_sizes = {594.0, 8025.0};
  for (auto _ : state) {
    double oe = core::OptimisticMeasure(in);
    benchmark::DoNotOptimize(oe);
  }
}
BENCHMARK(BM_OptimisticEstimate);

void BM_PruneTableLookup(benchmark::State& state) {
  core::PruneTable table;
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    double lo = rng.Uniform(0.0, 50.0);
    table.Insert(core::Itemset({core::Item::Interval(
                     static_cast<int>(rng.NextBelow(8)), lo, lo + 5.0)}),
                 core::PruneReason::kMinSupport);
  }
  core::Itemset probe({core::Item::Interval(3, 10.0, 12.0),
                       core::Item::Interval(6, 20.0, 22.0)});
  for (auto _ : state) {
    bool hit = table.CanPrune(probe);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_PruneTableLookup);

void BM_SelectionFilter(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  int age = *f.nd.db.schema().IndexOf("age");
  const auto& col = f.nd.db.continuous(age);
  for (auto _ : state) {
    data::Selection sel = f.gi.base_selection().Filter(
        [&](uint32_t r) { return col.value(r) > 40.0; });
    benchmark::DoNotOptimize(sel.rows().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.gi.total()));
}
BENCHMARK(BM_SelectionFilter);

void BM_IndexRangeVsScan_Index(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  int age = *f.nd.db.schema().IndexOf("age");
  data::ContinuousIndex idx = data::ContinuousIndex::Build(f.nd.db, age);
  for (auto _ : state) {
    size_t n = idx.CountInRange(30.0, 50.0);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_IndexRangeVsScan_Index);

void BM_IndexRangeVsScan_Scan(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  int age = *f.nd.db.schema().IndexOf("age");
  const auto& col = f.nd.db.continuous(age);
  for (auto _ : state) {
    size_t n = 0;
    for (uint32_t r = 0; r < f.nd.db.num_rows(); ++r) {
      double v = col.value(r);
      if (!std::isnan(v) && v > 30.0 && v <= 50.0) ++n;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_IndexRangeVsScan_Scan);

void BM_CategoricalIndexLookup(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  int occ = *f.nd.db.schema().IndexOf("occupation");
  data::CategoricalIndex idx = data::CategoricalIndex::Build(f.nd.db, occ);
  int32_t code = f.nd.db.categorical(occ).CodeOf("Prof-specialty");
  for (auto _ : state) {
    const data::Selection& rows = idx.RowsFor(code);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_CategoricalIndexLookup);

void BM_StreamAppend(benchmark::State& state) {
  stream::StreamConfig cfg;
  cfg.window_rows = 4000;
  cfg.min_rows = 1u << 30;  // never mine: isolate the append path
  stream::WindowMiner miner(
      cfg,
      {{"g", data::AttributeType::kCategorical},
       {"x", data::AttributeType::kContinuous}},
      "g");
  util::Rng rng(123);
  for (auto _ : state) {
    auto st = miner.Append({stream::StreamValue::Category("a"),
                            stream::StreamValue::Number(rng.NextDouble())});
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamAppend);

void BM_SplitAndCountTwoAxes(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  int age = *f.nd.db.schema().IndexOf("age");
  int hours = *f.nd.db.schema().IndexOf("hours_per_week");
  core::Space space;
  space.bounds = {{age, 18.0, 90.0}, {hours, 0.0, 99.0}};
  space.rows = f.gi.base_selection();
  std::vector<double> medians = core::PartitionMedians(f.nd.db, space);
  core::SplitScratch scratch;
  for (auto _ : state) {
    core::SplitResult split =
        core::SplitAndCount(f.nd.db, f.gi, space, medians, &scratch);
    benchmark::DoNotOptimize(split.cells.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(space.rows.size()));
}
BENCHMARK(BM_SplitAndCountTwoAxes);

// Cold-mine latency attack: end-to-end mine of a scaling dataset,
// baseline (scalar kernel, no bound seeding) against the attack
// configuration (vectorized kernel + sample-seeded optimistic bounds),
// plus the anytime time-to-first-result fraction and the pruning
// counters with and without seeding. The attack must not change the
// answer — every knob involved is a pure speed knob.
void AddColdMineCases(bench::BenchJson* json, bool smoke) {
  synth::ScalingOptions opt;
  opt.rows = smoke ? 8000 : 60000;
  opt.continuous_features = 6;
  opt.categorical_features = 2;
  synth::NamedDataset nd = synth::MakeScalingDataset(opt);
  auto attr = nd.db.schema().IndexOf(nd.group_attr);
  SDADCS_CHECK(attr.ok());
  auto gi_or = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
  SDADCS_CHECK(gi_or.ok());
  const data::GroupInfo& gi = *gi_or;
  const size_t seed_rows = smoke ? 1000 : 4000;

  core::MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.top_k = 10;
  core::MineRequest req;
  req.groups = &gi;

  // Best-of-3 wall times: a cold mine is short enough that scheduler
  // noise can swamp a single run.
  constexpr int kReps = 3;

  // Baseline: the seed repo's cold-mine path.
  cfg.kernel = core::KernelKind::kScalar;
  cfg.seed_sample_rows = 0;
  util::StatusOr<core::MiningResult> baseline =
      util::Status::Internal("unset");
  double base_sec = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer base_timer;
    baseline = core::Miner(cfg).Mine(nd.db, req);
    base_sec = std::min(base_sec, base_timer.Seconds());
    SDADCS_CHECK(baseline.ok());
  }

  // Attack: vectorized kernel + sample-seeded bounds.
  cfg.kernel = core::KernelKind::kAvx2;
  cfg.seed_sample_rows = seed_rows;
  util::StatusOr<core::MiningResult> fast = util::Status::Internal("unset");
  double fast_sec = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer fast_timer;
    fast = core::Miner(cfg).Mine(nd.db, req);
    fast_sec = std::min(fast_sec, fast_timer.Seconds());
    SDADCS_CHECK(fast.ok());
  }

  SDADCS_CHECK(fast->contrasts.size() == baseline->contrasts.size());
  for (size_t i = 0; i < fast->contrasts.size(); ++i) {
    SDADCS_CHECK(fast->contrasts[i].itemset.Key() ==
                 baseline->contrasts[i].itemset.Key());
    SDADCS_CHECK(fast->contrasts[i].measure ==
                 baseline->contrasts[i].measure);
  }

  // Seeding-only run: isolates the node-count effect of the seeded
  // bound for the counter report below.
  cfg.kernel = core::KernelKind::kScalar;
  auto seeded = core::Miner(cfg).Mine(nd.db, req);
  SDADCS_CHECK(seeded.ok());

  // Anytime streaming on the latency-first configuration: vectorized
  // kernel, seeding off. The seed pre-pass trades first-result latency
  // for total wall time, which is exactly the opposite of what an
  // --anytime caller wants, so the time-to-first-result is measured on
  // the configuration such a caller would run.
  cfg.kernel = core::KernelKind::kAvx2;
  cfg.seed_sample_rows = 0;
  core::MineRequest any_req;
  any_req.groups = &gi;
  any_req.run_control.set_anytime(true);
  util::WallTimer any_timer;
  double first_partial_sec = -1.0;
  any_req.run_control.set_progress_callback(
      [&](const util::RunProgress& p) {
        if (p.payload != nullptr && first_partial_sec < 0.0) {
          first_partial_sec = any_timer.Seconds();
        }
      });
  auto any = core::Miner(cfg).Mine(nd.db, any_req);
  double any_sec = any_timer.Seconds();
  SDADCS_CHECK(any.ok());
  SDADCS_CHECK(first_partial_sec >= 0.0);
  double ttfr_fraction =
      any_sec > 0.0 ? first_partial_sec / any_sec : 0.0;
  double mine_speedup = fast_sec > 0.0 ? base_sec / fast_sec : 0.0;

  std::printf("\n== cold mine: scalar+unseeded vs avx2+seeded (%s rows) ==\n",
              std::to_string(nd.db.num_rows()).c_str());
  std::printf("baseline %.4fs | attack %.4fs | speedup %.2fx\n", base_sec,
              fast_sec, mine_speedup);
  std::printf("anytime: first result at %.4fs of %.4fs (%.1f%%)\n",
              first_partial_sec, any_sec, 100.0 * ttfr_fraction);
  std::printf("counters (unseeded vs seeded, scalar kernel):\n");
  std::printf("  partitions_evaluated %llu vs %llu\n",
              static_cast<unsigned long long>(
                  baseline->counters.partitions_evaluated),
              static_cast<unsigned long long>(
                  seeded->counters.partitions_evaluated));
  std::printf("  pruned_oe_measure    %llu vs %llu\n",
              static_cast<unsigned long long>(
                  baseline->counters.pruned_oe_measure),
              static_cast<unsigned long long>(
                  seeded->counters.pruned_oe_measure));
  std::printf("  pruned_oe_chi2       %llu vs %llu\n",
              static_cast<unsigned long long>(
                  baseline->counters.pruned_oe_chi2),
              static_cast<unsigned long long>(
                  seeded->counters.pruned_oe_chi2));

  json->BeginCase("cold_mine_scaling");
  json->SetCase("rows", static_cast<uint64_t>(nd.db.num_rows()));
  json->SetCase("seed_sample_rows", static_cast<uint64_t>(seed_rows));
  json->SetCase("baseline_wall_seconds", base_sec);
  json->SetCase("attack_wall_seconds", fast_sec);
  json->SetCase("mine_speedup", mine_speedup);
  json->SetCase("anytime_first_result_seconds", first_partial_sec);
  json->SetCase("anytime_total_seconds", any_sec);
  json->SetCase("anytime_ttfr_fraction", ttfr_fraction);
  json->SetCase("unseeded_partitions",
                baseline->counters.partitions_evaluated);
  json->SetCase("seeded_partitions",
                seeded->counters.partitions_evaluated);
  json->SetCase("unseeded_pruned_oe", baseline->counters.pruned_oe_measure);
  json->SetCase("seeded_pruned_oe", seeded->counters.pruned_oe_measure);
}

// Sharded cold mine: the serial miner against the shard-merge engine
// (4 row shards) on the same end-to-end mine. The sharded engine's
// contract is byte-identity — the coordinator replays the serial
// decision order and only the counting scans fan out — so beyond the
// wall times this asserts the two pattern lists match exactly.
void AddShardedColdMineCase(bench::BenchJson* json, bool smoke) {
  synth::ScalingOptions opt;
  opt.rows = smoke ? 8000 : 60000;
  opt.continuous_features = 6;
  opt.categorical_features = 2;
  synth::NamedDataset nd = synth::MakeScalingDataset(opt);
  auto attr = nd.db.schema().IndexOf(nd.group_attr);
  SDADCS_CHECK(attr.ok());
  auto gi_or = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
  SDADCS_CHECK(gi_or.ok());
  const data::GroupInfo& gi = *gi_or;

  core::MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.top_k = 10;
  core::MineRequest req;
  req.groups = &gi;
  constexpr size_t kShards = 4;
  constexpr int kReps = 3;

  util::StatusOr<core::MiningResult> serial =
      util::Status::Internal("unset");
  double serial_sec = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    serial = core::Miner(cfg).Mine(nd.db, req);
    serial_sec = std::min(serial_sec, timer.Seconds());
    SDADCS_CHECK(serial.ok());
  }

  parallel::ShardedMiner sharded_miner(cfg, kShards);
  util::StatusOr<core::MiningResult> sharded =
      util::Status::Internal("unset");
  double sharded_sec = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    sharded = sharded_miner.Mine(nd.db, req);
    sharded_sec = std::min(sharded_sec, timer.Seconds());
    SDADCS_CHECK(sharded.ok());
  }

  SDADCS_CHECK(sharded->contrasts.size() == serial->contrasts.size());
  for (size_t i = 0; i < sharded->contrasts.size(); ++i) {
    SDADCS_CHECK(sharded->contrasts[i].itemset.Key() ==
                 serial->contrasts[i].itemset.Key());
    SDADCS_CHECK(sharded->contrasts[i].measure ==
                 serial->contrasts[i].measure);
  }

  const double speedup = sharded_sec > 0.0 ? serial_sec / sharded_sec : 0.0;
  std::printf("\n== cold mine: serial vs sharded:%zu (%s rows) ==\n",
              kShards, std::to_string(nd.db.num_rows()).c_str());
  std::printf("serial %.4fs | sharded %.4fs | speedup %.2fx "
              "(identical patterns)\n",
              serial_sec, sharded_sec, speedup);

  json->BeginCase("cold_mine_sharded");
  json->SetCase("rows", static_cast<uint64_t>(nd.db.num_rows()));
  json->SetCase("shards", static_cast<uint64_t>(kShards));
  json->SetCase("serial_wall_seconds", serial_sec);
  json->SetCase("sharded_wall_seconds", sharded_sec);
  json->SetCase("sharded_speedup", speedup);
  json->SetCase("patterns", static_cast<uint64_t>(serial->contrasts.size()));
}

// Chunked cold mine: the same end-to-end mine on the three storage
// configurations — dense resident columns, resident columns re-sliced
// into 4K-row chunks, and the mmap-backed paged backend with a byte cap
// at a quarter of the dense column footprint. Chunking is a storage
// knob, never a semantic one, so beyond the wall times this asserts
// all three pattern lists match exactly; the paged case also reports
// the chunk load/eviction traffic its cap forced.
void AddChunkedColdMineCase(bench::BenchJson* json, bool smoke) {
  synth::ScalingOptions opt;
  opt.rows = smoke ? 8000 : 60000;
  opt.continuous_features = 6;
  opt.categorical_features = 2;
  synth::NamedDataset nd = synth::MakeScalingDataset(opt);
  auto attr = nd.db.schema().IndexOf(nd.group_attr);
  SDADCS_CHECK(attr.ok());
  auto gi_or = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
  SDADCS_CHECK(gi_or.ok());
  const data::GroupInfo& gi = *gi_or;

  core::MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.top_k = 10;
  core::MineRequest req;
  req.groups = &gi;
  constexpr size_t kChunkRows = 4096;
  constexpr int kReps = 3;

  util::StatusOr<core::MiningResult> dense = util::Status::Internal("unset");
  double dense_sec = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    dense = core::Miner(cfg).Mine(nd.db, req);
    dense_sec = std::min(dense_sec, timer.Seconds());
    SDADCS_CHECK(dense.ok());
  }

  // Resident backend, re-sliced: the span loop's overhead in isolation.
  nd.db.SetChunkRows(kChunkRows);
  util::StatusOr<core::MiningResult> chunked =
      util::Status::Internal("unset");
  double chunked_sec = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    chunked = core::Miner(cfg).Mine(nd.db, req);
    chunked_sec = std::min(chunked_sec, timer.Seconds());
    SDADCS_CHECK(chunked.ok());
  }
  nd.db.SetChunkRows(0);

  // Paged backend: spill, reopen mmap-backed, cap residency at a
  // quarter of the dense footprint so the mine must page.
  const std::string spill_path = "bench_micro_chunked.spill";
  SDADCS_CHECK(data::WriteSpill(nd.db, spill_path).ok());
  data::SpillOptions sopt;
  sopt.chunk_rows = kChunkRows;
  sopt.max_resident_bytes = nd.db.MemoryUsage() / 4;
  auto paged_db = data::OpenSpill(spill_path, sopt);
  SDADCS_CHECK(paged_db.ok());
  std::remove(spill_path.c_str());
  auto paged_gi =
      data::GroupInfo::CreateForValues(*paged_db, *attr, nd.groups);
  SDADCS_CHECK(paged_gi.ok());
  core::MineRequest paged_req;
  paged_req.groups = &*paged_gi;
  util::StatusOr<core::MiningResult> paged = util::Status::Internal("unset");
  double paged_sec = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    paged = core::Miner(cfg).Mine(*paged_db, paged_req);
    paged_sec = std::min(paged_sec, timer.Seconds());
    SDADCS_CHECK(paged.ok());
  }
  data::ChunkStats cs = paged_db->chunk_store()->stats();
  SDADCS_CHECK(cs.loads > 0);

  for (const auto* result : {&*chunked, &*paged}) {
    SDADCS_CHECK(result->contrasts.size() == dense->contrasts.size());
    for (size_t i = 0; i < result->contrasts.size(); ++i) {
      SDADCS_CHECK(result->contrasts[i].itemset.Key() ==
                   dense->contrasts[i].itemset.Key());
      SDADCS_CHECK(result->contrasts[i].measure ==
                   dense->contrasts[i].measure);
    }
  }

  const double chunk_ratio = dense_sec > 0.0 ? chunked_sec / dense_sec : 0.0;
  const double paged_ratio = dense_sec > 0.0 ? paged_sec / dense_sec : 0.0;
  std::printf("\n== cold mine: dense vs chunked vs mmap-backed (%s rows, "
              "%zu-row chunks) ==\n",
              std::to_string(nd.db.num_rows()).c_str(), kChunkRows);
  std::printf("dense %.4fs | chunked %.4fs (%.2fx) | paged %.4fs (%.2fx, "
              "cap %zuB, %llu loads, %llu evictions; identical patterns)\n",
              dense_sec, chunked_sec, chunk_ratio, paged_sec, paged_ratio,
              cs.max_resident_bytes,
              static_cast<unsigned long long>(cs.loads),
              static_cast<unsigned long long>(cs.evictions));

  json->BeginCase("cold_mine_chunked");
  json->SetCase("rows", static_cast<uint64_t>(nd.db.num_rows()));
  json->SetCase("chunk_rows", static_cast<uint64_t>(kChunkRows));
  json->SetCase("dense_wall_seconds", dense_sec);
  json->SetCase("chunked_wall_seconds", chunked_sec);
  json->SetCase("paged_wall_seconds", paged_sec);
  json->SetCase("chunked_over_dense", chunk_ratio);
  json->SetCase("paged_over_dense", paged_ratio);
  json->SetCase("paged_cap_bytes",
                static_cast<uint64_t>(cs.max_resident_bytes));
  json->SetCase("paged_peak_resident_bytes",
                static_cast<uint64_t>(cs.peak_resident_bytes));
  json->SetCase("paged_chunk_loads", cs.loads);
  json->SetCase("paged_chunk_evictions", cs.evictions);
}

// Fused-vs-naive split+count comparison on the Section 6 scaling
// dataset. The naive reference is exactly the seed hot path: FindCombs
// (per-cell Selection::Filter) followed by per-cell CountGroups. Writes
// wall time, throughput, peak cell count and speedup per axis count to
// BENCH_micro.json.
void RunKernelComparison(bool smoke) {
  synth::ScalingOptions opt;
  opt.rows = smoke ? 20000 : 100000;
  opt.continuous_features = 8;
  opt.categorical_features = 2;
  synth::NamedDataset nd = synth::MakeScalingDataset(opt);
  auto attr = nd.db.schema().IndexOf(nd.group_attr);
  SDADCS_CHECK(attr.ok());
  auto gi_or = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
  SDADCS_CHECK(gi_or.ok());
  const data::GroupInfo& gi = *gi_or;
  const int reps = smoke ? 3 : 20;

  bench::BenchJson json("micro");
  json.Set("dataset", nd.name);
  json.Set("rows", static_cast<uint64_t>(nd.db.num_rows()));
  json.Set("repetitions", static_cast<uint64_t>(reps));
  json.Set("mode", std::string(smoke ? "smoke" : "full"));

  std::printf("\n== split+count kernel: fused vs naive (%s rows) ==\n",
              std::to_string(nd.db.num_rows()).c_str());
  std::printf("%6s | %12s %12s %12s | %10s | %8s %8s\n", "axes",
              "naive(s)", "fused(s)", "vector(s)", "rows/s", "fuse_x",
              "vec_x");

  double min_speedup = std::numeric_limits<double>::infinity();
  for (int axes : {2, 4, 6}) {
    core::Space space;
    for (int a = 0; a < axes; ++a) {
      std::string name = "feat_c00" + std::to_string(a);
      auto idx = nd.db.schema().IndexOf(name);
      SDADCS_CHECK(idx.ok());
      core::RootBounds rb =
          core::ComputeRootBounds(nd.db, *idx, gi.base_selection());
      space.bounds.push_back({*idx, rb.lo, rb.hi});
    }
    space.rows = gi.base_selection();
    std::vector<double> cuts = core::PartitionMedians(nd.db, space);

    // Naive reference: the seed's per-cell filter + count.
    util::WallTimer naive_timer;
    size_t peak_cells = 0;
    std::vector<core::GroupCounts> naive_counts;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<core::Space> cells = core::FindCombs(nd.db, space, cuts);
      peak_cells = std::max(peak_cells, cells.size());
      naive_counts.clear();
      for (const core::Space& cell : cells) {
        naive_counts.push_back(core::CountGroups(gi, cell.rows));
      }
      benchmark::DoNotOptimize(naive_counts.data());
    }
    double naive_sec = naive_timer.Seconds();

    // Fused kernel, pinned to the scalar pass so "speedup" isolates the
    // fusion win from the vectorization win measured next.
    core::SplitScratch scratch;
    util::WallTimer fused_timer;
    core::SplitResult split;
    for (int rep = 0; rep < reps; ++rep) {
      split = core::SplitAndCount(nd.db, gi, space, cuts, &scratch,
                                  core::KernelKind::kScalar);
      benchmark::DoNotOptimize(split.cells.data());
    }
    double fused_sec = fused_timer.Seconds();

    // Vectorized pass of the same fused kernel (resolves back to scalar
    // on hosts without AVX2, where vector_speedup will print ~1.0x).
    core::SplitScratch vscratch;
    util::WallTimer vector_timer;
    core::SplitResult vsplit;
    for (int rep = 0; rep < reps; ++rep) {
      vsplit = core::SplitAndCount(nd.db, gi, space, cuts, &vscratch,
                                   core::KernelKind::kAvx2);
      benchmark::DoNotOptimize(vsplit.cells.data());
    }
    double vector_sec = vector_timer.Seconds();

    // Sanity: all kernels must agree before the numbers mean anything.
    SDADCS_CHECK(split.counts.size() == naive_counts.size());
    SDADCS_CHECK(vsplit.counts.size() == naive_counts.size());
    for (size_t c = 0; c < split.counts.size(); ++c) {
      SDADCS_CHECK(split.counts[c].counts == naive_counts[c].counts);
      SDADCS_CHECK(vsplit.counts[c].counts == naive_counts[c].counts);
      SDADCS_CHECK(vsplit.cells[c].rows.rows() ==
                   split.cells[c].rows.rows());
      SDADCS_CHECK(split.cells[c].rows.rows() ==
                   core::FindCombs(nd.db, space, cuts)[c].rows.rows());
    }

    const double total_rows =
        static_cast<double>(space.rows.size()) * reps;
    double rows_per_sec = vector_sec > 0.0 ? total_rows / vector_sec : 0.0;
    double speedup = fused_sec > 0.0 ? naive_sec / fused_sec : 0.0;
    double vector_speedup =
        vector_sec > 0.0 ? fused_sec / vector_sec : 0.0;
    min_speedup = std::min(min_speedup, speedup);

    std::printf("%6d | %12.4f %12.4f %12.4f | %10.3g | %7.2fx %7.2fx\n",
                axes, naive_sec, fused_sec, vector_sec, rows_per_sec,
                speedup, vector_speedup);

    json.BeginCase("split_count_axes_" + std::to_string(axes));
    json.SetCase("axes", static_cast<uint64_t>(axes));
    json.SetCase("naive_wall_seconds", naive_sec);
    json.SetCase("fused_wall_seconds", fused_sec);
    json.SetCase("vector_wall_seconds", vector_sec);
    json.SetCase("rows_per_sec", rows_per_sec);
    json.SetCase("peak_cells", static_cast<uint64_t>(peak_cells));
    json.SetCase("speedup", speedup);
    json.SetCase("vector_speedup", vector_speedup);
  }
  json.Set("min_speedup", min_speedup);
  AddColdMineCases(&json, smoke);
  AddShardedColdMineCase(&json, smoke);
  AddChunkedColdMineCase(&json, smoke);
  json.Write();
}

}  // namespace
}  // namespace sdadcs

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  sdadcs::RunKernelComparison(smoke);
  if (smoke) return 0;
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
