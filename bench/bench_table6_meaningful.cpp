// Table 6 reproduction: number of meaningful vs meaningless contrasts
// in the unfiltered top-100 of each dataset (SDAD-CS NP output,
// classified with the redundancy / productivity / independent-
// productivity tests).

#include <cstdio>

#include "bench/common.h"
#include "core/meaningful.h"

namespace sdadcs::bench {
namespace {

void Run() {
  PrintHeader("Table 6: Number of Meaningful Contrasts in the top 100");
  std::printf("%-15s %12s %12s   %s\n", "dataset", "meaningful",
              "meaningless", "(redundant/unproductive/not-indep)");

  for (const std::string& name : synth::UciLikeNames()) {
    Bench b = Load(name);
    core::MinerConfig cfg = PaperConfig(/*depth=*/2);
    AlgoRun np = RunSdadNp(b, cfg);
    std::vector<core::ContrastPattern> head(
        np.patterns.begin(),
        np.patterns.begin() + std::min<size_t>(100, np.patterns.size()));
    core::MeaningfulnessReport report =
        core::ClassifyPatterns(b.nd.db, b.gi, cfg, head);
    std::printf("%-15s %12d %12d   (%d/%d/%d)  [of %zu]\n", name.c_str(),
                report.meaningful, report.meaningless(), report.redundant,
                report.unproductive,
                report.not_independently_productive, head.size());
  }
  std::printf(
      "\npaper-shape check: the majority of unfiltered top patterns are "
      "meaningless on most datasets.\n");
}

}  // namespace
}  // namespace sdadcs::bench

int main() {
  sdadcs::bench::Run();
  return 0;
}
