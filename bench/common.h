#ifndef SDADCS_BENCH_COMMON_H_
#define SDADCS_BENCH_COMMON_H_

// Shared harness for the table/figure reproduction binaries: runs each
// algorithm (SDAD-CS, SDAD-CS NP, MVD, Fayyad entropy, Cortana-Interval)
// with the paper's experimental settings and prints aligned rows.

#include <string>
#include <vector>

#include "core/contrast.h"
#include "core/miner.h"
#include "data/group_info.h"
#include "discretize/binned_miner.h"
#include "synth/uci_like.h"

namespace sdadcs::bench {

/// Experimental setup of Section 5: alpha = 0.05, delta = 0.1, search
/// tree stunted at `depth` levels, top-100 patterns.
core::MinerConfig PaperConfig(int depth = 2);

/// Output of one algorithm on one dataset.
struct AlgoRun {
  std::string algorithm;
  std::vector<core::ContrastPattern> patterns;  ///< sorted by measure
  double seconds = 0.0;
  uint64_t partitions = 0;
};

/// Resolved dataset + its GroupInfo.
struct Bench {
  synth::NamedDataset nd;
  data::GroupInfo gi;
};

/// Materializes a named dataset and its two-group GroupInfo.
Bench Load(const std::string& name, uint64_t seed = 7);
Bench LoadNamed(synth::NamedDataset nd);

/// SDAD-CS with all meaningfulness machinery (the paper's algorithm).
AlgoRun RunSdad(const Bench& b, const core::MinerConfig& cfg);

/// SDAD-CS NP: meaningfulness pruning/filters off.
AlgoRun RunSdadNp(const Bench& b, core::MinerConfig cfg);

/// MVD global discretization followed by STUCCO-style mining.
AlgoRun RunMvd(const Bench& b, const core::MinerConfig& cfg);

/// Fayyad-Irani entropy/MDL discretization followed by mining.
AlgoRun RunEntropy(const Bench& b, const core::MinerConfig& cfg);

/// Cortana-Interval: WRAcc beam search run once per group, pooled.
AlgoRun RunCortana(const Bench& b, const core::MinerConfig& cfg);

/// Support differences of the strongest `k` patterns (for Table 4 and
/// the Wilcoxon comparison).
std::vector<double> TopDiffs(const AlgoRun& run, size_t k);

/// Mean of `values` (0 when empty).
double MeanOf(const std::vector<double>& values);

/// Prints "== <title> ==" with surrounding blank lines.
void PrintHeader(const std::string& title);

/// Prints the top `k` patterns of a run, one per line, with supports.
void PrintPatterns(const Bench& b, const AlgoRun& run, size_t k);

/// Machine-readable metrics sink for the bench binaries. Collects flat
/// key/value metrics plus per-case metric groups, then serialises to
/// `BENCH_<name>.json` in the working directory so driver scripts can
/// diff runs without scraping stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Set(const std::string& key, double value);
  void Set(const std::string& key, uint64_t value);
  void Set(const std::string& key, const std::string& value);

  /// Starts a named metric group (one JSON object in the "cases" array);
  /// subsequent SetCase calls land in it.
  void BeginCase(const std::string& name);
  void SetCase(const std::string& key, double value);
  void SetCase(const std::string& key, uint64_t value);
  void SetCase(const std::string& key, const std::string& value);

  /// Writes BENCH_<name>.json and returns its path ("" on failure).
  std::string Write() const;

  struct Entry {
    std::string key;
    std::string rendered;  // value already rendered as JSON
  };

 private:
  struct Case {
    std::string name;
    std::vector<Entry> entries;
  };

  std::string name_;
  std::vector<Entry> entries_;
  std::vector<Case> cases_;
};

}  // namespace sdadcs::bench

#endif  // SDADCS_BENCH_COMMON_H_
