#ifndef SDADCS_BENCH_COMMON_H_
#define SDADCS_BENCH_COMMON_H_

// Shared harness for the table/figure reproduction binaries: runs each
// algorithm (SDAD-CS, SDAD-CS NP, MVD, Fayyad entropy, Cortana-Interval)
// with the paper's experimental settings and prints aligned rows.

#include <string>
#include <vector>

#include "core/contrast.h"
#include "core/miner.h"
#include "data/group_info.h"
#include "discretize/binned_miner.h"
#include "synth/uci_like.h"

namespace sdadcs::bench {

/// Experimental setup of Section 5: alpha = 0.05, delta = 0.1, search
/// tree stunted at `depth` levels, top-100 patterns.
core::MinerConfig PaperConfig(int depth = 2);

/// Output of one algorithm on one dataset.
struct AlgoRun {
  std::string algorithm;
  std::vector<core::ContrastPattern> patterns;  ///< sorted by measure
  double seconds = 0.0;
  uint64_t partitions = 0;
};

/// Resolved dataset + its GroupInfo.
struct Bench {
  synth::NamedDataset nd;
  data::GroupInfo gi;
};

/// Materializes a named dataset and its two-group GroupInfo.
Bench Load(const std::string& name, uint64_t seed = 7);
Bench LoadNamed(synth::NamedDataset nd);

/// SDAD-CS with all meaningfulness machinery (the paper's algorithm).
AlgoRun RunSdad(const Bench& b, const core::MinerConfig& cfg);

/// SDAD-CS NP: meaningfulness pruning/filters off.
AlgoRun RunSdadNp(const Bench& b, core::MinerConfig cfg);

/// MVD global discretization followed by STUCCO-style mining.
AlgoRun RunMvd(const Bench& b, const core::MinerConfig& cfg);

/// Fayyad-Irani entropy/MDL discretization followed by mining.
AlgoRun RunEntropy(const Bench& b, const core::MinerConfig& cfg);

/// Cortana-Interval: WRAcc beam search run once per group, pooled.
AlgoRun RunCortana(const Bench& b, const core::MinerConfig& cfg);

/// Support differences of the strongest `k` patterns (for Table 4 and
/// the Wilcoxon comparison).
std::vector<double> TopDiffs(const AlgoRun& run, size_t k);

/// Mean of `values` (0 when empty).
double MeanOf(const std::vector<double>& values);

/// Prints "== <title> ==" with surrounding blank lines.
void PrintHeader(const std::string& title);

/// Prints the top `k` patterns of a run, one per line, with supports.
void PrintPatterns(const Bench& b, const AlgoRun& run, size_t k);

}  // namespace sdadcs::bench

#endif  // SDADCS_BENCH_COMMON_H_
