#include "util/random.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace sdadcs::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(42);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(42);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_TRUE(seen.count(-2) > 0);
  EXPECT_TRUE(seen.count(2) > 0);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(42);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(11);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 1.0})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.50, 0.02);
}

TEST(RngTest, CategoricalZeroWeightNeverPicked) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(rng.Categorical({1.0, 0.0, 1.0}), 1u);
  }
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(17);
  std::vector<uint32_t> p = rng.Permutation(100);
  std::set<uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(19);
  EXPECT_TRUE(rng.Permutation(0).empty());
  EXPECT_EQ(rng.Permutation(1), (std::vector<uint32_t>{0}));
}

}  // namespace
}  // namespace sdadcs::util
