#include "util/string_util.h"

#include <gtest/gtest.h>

namespace sdadcs::util {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyFieldsPreserved) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputIsSingleEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ParseDoubleTest, ParsesNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2e3 "), -2000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("1.5 2").has_value());
}

TEST(ParseIntTest, ParsesAndRejects) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("4.2").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
}

TEST(ToLowerTest, LowersAscii) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(FormatDoubleTest, CompactAndSpecials) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "nan");
}

}  // namespace
}  // namespace sdadcs::util
