#include <thread>

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/timer.h"

namespace sdadcs::util {
namespace {

TEST(LoggingTest, LevelNamesStable) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARNING");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(LoggingTest, SetGetRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  SDADCS_LOG(kDebug) << "below threshold " << 42;
  SDADCS_LOG(kInfo) << "also below";
  SetLogLevel(before);
  SUCCEED();
}

TEST(CheckTest, PassingCheckIsNoop) {
  SDADCS_CHECK(1 + 1 == 2);
  SUCCEED();
}

TEST(CheckTest, FailingCheckAborts) {
  EXPECT_DEATH(SDADCS_CHECK(false), "CHECK FAILED");
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double s = timer.Seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.Millis(), timer.Seconds() * 1000.0,
              timer.Seconds() * 50.0);
}

TEST(WallTimerTest, ResetRestarts) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  timer.Reset();
  EXPECT_LT(timer.Seconds(), 0.010);
}

}  // namespace
}  // namespace sdadcs::util
