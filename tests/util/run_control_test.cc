#include "util/run_control.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/run_state.h"

namespace sdadcs::util {
namespace {

using Clock = RunControl::Clock;

TEST(RunControlTest, DefaultIsUnlimited) {
  RunControl control;
  EXPECT_FALSE(control.cancelled());
  EXPECT_FALSE(control.has_deadline());
  EXPECT_EQ(control.Check(Clock::now()), StopReason::kNone);
  EXPECT_EQ(control.Charge(1000, Clock::now()), StopReason::kNone);
}

TEST(RunControlTest, CopiesShareCancellation) {
  RunControl control;
  RunControl copy = control;
  copy.Cancel();
  EXPECT_TRUE(control.cancelled());
  EXPECT_EQ(control.Check(Clock::now()), StopReason::kCancelled);
}

TEST(RunControlTest, CancelFromAnotherThread) {
  RunControl control;
  std::thread t([control]() mutable { control.Cancel(); });
  t.join();
  EXPECT_TRUE(control.cancelled());
}

TEST(RunControlTest, DeadlineTrips) {
  RunControl control;
  Clock::time_point now = Clock::now();
  control.set_deadline(now + std::chrono::milliseconds(10));
  EXPECT_TRUE(control.has_deadline());
  EXPECT_EQ(control.Check(now), StopReason::kNone);
  EXPECT_EQ(control.Check(now + std::chrono::milliseconds(11)),
            StopReason::kDeadlineExceeded);
  // Charge observes the deadline too.
  EXPECT_EQ(control.Charge(1, now + std::chrono::milliseconds(11)),
            StopReason::kDeadlineExceeded);
}

TEST(RunControlTest, WithDeadlineConvenience) {
  RunControl control = RunControl::WithDeadline(std::chrono::hours(1));
  EXPECT_TRUE(control.has_deadline());
  EXPECT_EQ(control.Check(Clock::now()), StopReason::kNone);
}

TEST(RunControlTest, BudgetExhaustsAfterCharges) {
  RunControl control;
  control.set_node_budget(10);
  Clock::time_point now = Clock::now();
  EXPECT_EQ(control.Charge(6, now), StopReason::kNone);
  EXPECT_EQ(control.Charge(4, now), StopReason::kNone);  // exactly consumed
  // A fully consumed budget is not "exhausted" until more work is asked.
  EXPECT_EQ(control.Check(now), StopReason::kNone);
  EXPECT_EQ(control.Charge(1, now), StopReason::kBudgetExhausted);
  EXPECT_EQ(control.Check(now), StopReason::kBudgetExhausted);
}

TEST(RunControlTest, CancellationWinsOverBudget) {
  RunControl control;
  control.set_node_budget(0);
  control.Cancel();
  EXPECT_EQ(control.Charge(1, Clock::now()), StopReason::kCancelled);
}

TEST(RunControlTest, StopReasonNames) {
  EXPECT_STREQ(StopReasonToString(StopReason::kNone), "none");
  EXPECT_STREQ(StopReasonToString(StopReason::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(StopReasonToString(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(StopReasonToString(StopReason::kBudgetExhausted),
               "budget_exhausted");
}

TEST(RunControlTest, ProgressCallbackDelivered) {
  RunControl control;
  EXPECT_FALSE(control.has_progress_callback());
  std::vector<RunProgress> seen;
  control.set_progress_callback(
      [&seen](const RunProgress& p) { seen.push_back(p); });
  EXPECT_TRUE(control.has_progress_callback());
  RunProgress p;
  p.level = 2;
  p.candidates_done = 3;
  p.candidates_total = 7;
  p.topk_threshold = 0.25;
  control.ReportProgress(p);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].level, 2);
  EXPECT_EQ(seen[0].candidates_done, 3u);
  EXPECT_EQ(seen[0].candidates_total, 7u);
  EXPECT_DOUBLE_EQ(seen[0].topk_threshold, 0.25);
}

TEST(RunStateTest, DefaultNeverStops) {
  core::RunState run;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(run.CheckPoint());
  EXPECT_FALSE(run.CheckNow());
  EXPECT_EQ(run.completion(), core::Completion::kComplete);
}

TEST(RunStateTest, CancellationObservedOnNextCheckpoint) {
  RunControl control;
  core::RunState run(control);
  EXPECT_FALSE(run.CheckPoint());
  control.Cancel();
  // Cancellation is observed on the very next checkpoint, regardless of
  // the amortization stride.
  EXPECT_TRUE(run.CheckPoint());
  EXPECT_EQ(run.reason(), StopReason::kCancelled);
  EXPECT_EQ(run.completion(), core::Completion::kCancelled);
}

TEST(RunStateTest, StopIsSticky) {
  RunControl control;
  core::RunState run(control);
  control.Cancel();
  EXPECT_TRUE(run.CheckNow());
  EXPECT_TRUE(run.CheckPoint());
  EXPECT_TRUE(run.stopped());
}

TEST(RunStateTest, DeadlineObservedWithinStride) {
  RunControl control;
  control.set_deadline(Clock::now() - std::chrono::milliseconds(1));
  core::RunState run(control);
  // The clock is only consulted every kStrideWeight units of checkpoint
  // weight, so an expired deadline trips within one stride of
  // weight-1 checkpoints...
  bool stopped = false;
  for (int i = 0; i < 16 && !stopped; ++i) stopped = run.CheckPoint();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(run.completion(), core::Completion::kDeadlineExceeded);

  // ...and immediately for a large node, whose weight alone crosses the
  // stride.
  core::RunState heavy(control);
  EXPECT_TRUE(heavy.CheckPoint(core::RunState::NodeWeight(1 << 20)));
}

TEST(RunStateTest, BudgetChargesNodesNotWeight) {
  RunControl control;
  control.set_node_budget(5);
  core::RunState run(control);
  // Six nodes of weight 16 flush on every checkpoint; the sixth node
  // exceeds the 5-node budget.
  int stopped_at = -1;
  for (int i = 0; i < 6; ++i) {
    if (run.CheckPoint(16)) {
      stopped_at = i;
      break;
    }
  }
  EXPECT_EQ(stopped_at, 5);
  EXPECT_EQ(run.completion(), core::Completion::kBudgetExhausted);
}

TEST(RunStateTest, CompletionNames) {
  EXPECT_STREQ(core::CompletionToString(core::Completion::kComplete),
               "complete");
  EXPECT_STREQ(core::CompletionToString(core::Completion::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(core::CompletionToString(core::Completion::kCancelled),
               "cancelled");
  EXPECT_STREQ(core::CompletionToString(core::Completion::kBudgetExhausted),
               "budget_exhausted");
}

}  // namespace
}  // namespace sdadcs::util
