#include "util/flags.h"

#include <gtest/gtest.h>

namespace sdadcs::util {
namespace {

StatusOr<Flags> ParseAll(std::vector<const char*> argv,
                         std::vector<std::string> booleans = {"np"}) {
  argv.insert(argv.begin(), "tool");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data(), booleans);
}

TEST(FlagsTest, PositionalsAndValues) {
  auto f = ParseAll({"mine", "data.csv", "--group", "outcome", "--depth",
                     "3"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->positional(),
            (std::vector<std::string>{"mine", "data.csv"}));
  EXPECT_EQ(f->Get("group"), "outcome");
  EXPECT_EQ(f->GetInt("depth", 1), 3);
}

TEST(FlagsTest, BooleanFlagConsumesNoValue) {
  auto f = ParseAll({"mine", "--np", "data.csv"});
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->Has("np"));
  EXPECT_EQ(f->positional().size(), 2u);
}

TEST(FlagsTest, EqualsForm) {
  auto f = ParseAll({"--delta=0.25", "--groups=a,b"});
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->GetDouble("delta", 0.0), 0.25);
  EXPECT_EQ(f->GetList("groups"),
            (std::vector<std::string>{"a", "b"}));
}

TEST(FlagsTest, MissingValueIsError) {
  auto f = ParseAll({"mine", "--group"});
  EXPECT_FALSE(f.ok());
}

TEST(FlagsTest, BareDoubleDashIsError) {
  auto f = ParseAll({"--"});
  EXPECT_FALSE(f.ok());
}

TEST(FlagsTest, FallbacksOnAbsentOrGarbage) {
  auto f = ParseAll({"--depth", "abc"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->GetInt("depth", 7), 7);
  EXPECT_EQ(f->GetInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(f->GetDouble("missing", 0.5), 0.5);
  EXPECT_EQ(f->Get("missing", "dft"), "dft");
  EXPECT_TRUE(f->GetList("missing").empty());
}

TEST(FlagsTest, LaterValueWins) {
  auto f = ParseAll({"--depth", "2", "--depth", "5"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->GetInt("depth", 0), 5);
}

}  // namespace
}  // namespace sdadcs::util
