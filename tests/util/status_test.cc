#include "util/status.h"

#include <gtest/gtest.h>

namespace sdadcs::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad delta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad delta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad delta");
}

TEST(StatusTest, AllFactoryFunctionsSetCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  SDADCS_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sdadcs::util
