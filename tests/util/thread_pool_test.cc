#include "util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace sdadcs::util {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  ParallelFor(pool, visits.size(),
              [&visits](size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelForTest, MoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  ParallelFor(pool, 10000, [&sum](size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

}  // namespace
}  // namespace sdadcs::util
