#include "stats/wilcoxon.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace sdadcs::stats {
namespace {

TEST(MannWhitneyTest, IdenticalSamplesNotSignificant) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  MannWhitneyResult res = MannWhitneyTest(x, x);
  ASSERT_TRUE(res.valid);
  EXPECT_GT(res.p_value, 0.9);
}

TEST(MannWhitneyTest, DisjointSamplesSignificant) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(100 + i);
  }
  MannWhitneyResult res = MannWhitneyTest(x, y);
  ASSERT_TRUE(res.valid);
  EXPECT_LT(res.p_value, 1e-6);
}

TEST(MannWhitneyTest, UStatisticValue) {
  // x = {1,2}, y = {3,4}: every y beats every x, U1 = 0.
  MannWhitneyResult res = MannWhitneyTest({1, 2}, {3, 4});
  ASSERT_TRUE(res.valid);
  EXPECT_DOUBLE_EQ(res.u, 0.0);
}

TEST(MannWhitneyTest, SymmetricInDirection) {
  std::vector<double> x = {1, 2, 3, 10, 12};
  std::vector<double> y = {4, 5, 6, 7, 20};
  MannWhitneyResult ab = MannWhitneyTest(x, y);
  MannWhitneyResult ba = MannWhitneyTest(y, x);
  ASSERT_TRUE(ab.valid && ba.valid);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_NEAR(ab.z, -ba.z, 1e-12);
}

TEST(MannWhitneyTest, EmptySampleInvalid) {
  EXPECT_FALSE(MannWhitneyTest({}, {1, 2}).valid);
  EXPECT_FALSE(MannWhitneyTest({1, 2}, {}).valid);
}

TEST(MannWhitneyTest, AllTiedInvalid) {
  EXPECT_FALSE(MannWhitneyTest({5, 5, 5}, {5, 5}).valid);
}

TEST(MannWhitneyTest, TiesHandledWithMidranks) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {2, 3, 3, 4};
  MannWhitneyResult res = MannWhitneyTest(x, y);
  ASSERT_TRUE(res.valid);
  EXPECT_GT(res.p_value, 0.0);
  EXPECT_LE(res.p_value, 1.0);
}

TEST(MannWhitneyTest, FalsePositiveRateRoughlyAlpha) {
  // Same-distribution samples should reject ~5% of the time at 0.05.
  util::Rng rng(99);
  int rejections = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 30; ++i) {
      x.push_back(rng.NextGaussian());
      y.push_back(rng.NextGaussian());
    }
    MannWhitneyResult res = MannWhitneyTest(x, y);
    if (res.valid && res.p_value < 0.05) ++rejections;
  }
  double rate = static_cast<double>(rejections) / trials;
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.11);
}

}  // namespace
}  // namespace sdadcs::stats
