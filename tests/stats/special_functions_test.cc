#include "stats/special_functions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sdadcs::stats {
namespace {

TEST(LogGammaTest, KnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
}

TEST(RegularizedGammaTest, PPlusQIsOne) {
  for (double a : {0.5, 1.0, 3.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10);
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(RegularizedGammaTest, Monotone) {
  double prev = 0.0;
  for (double x = 0.1; x < 10.0; x += 0.5) {
    double p = RegularizedGammaP(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(RegularizedBetaTest, BoundaryAndSymmetry) {
  EXPECT_DOUBLE_EQ(RegularizedBeta(0.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedBeta(1.0, 2.0, 3.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(RegularizedBeta(0.3, 2.0, 5.0),
              1.0 - RegularizedBeta(0.7, 5.0, 2.0), 1e-10);
}

TEST(RegularizedBetaTest, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedBeta(x, 1.0, 1.0), x, 1e-10);
  }
}

TEST(LogChooseTest, SmallValues) {
  EXPECT_NEAR(LogChoose(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(LogChoose(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogChoose(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(LogChoose(52, 5), std::log(2598960.0), 1e-8);
}

}  // namespace
}  // namespace sdadcs::stats
