#include "stats/chi_squared.h"

#include <gtest/gtest.h>

namespace sdadcs::stats {
namespace {

TEST(ChiSquaredPValueTest, KnownCriticalPoints) {
  // Chi-square with 1 dof: P(X >= 3.841459) = 0.05.
  EXPECT_NEAR(ChiSquaredPValue(3.841458820694124, 1), 0.05, 1e-8);
  // 2 dof: survival is exp(-x/2).
  EXPECT_NEAR(ChiSquaredPValue(5.991464547107979, 2), 0.05, 1e-8);
  EXPECT_NEAR(ChiSquaredPValue(0.0, 3), 1.0, 1e-12);
}

TEST(ChiSquaredCriticalTest, InvertsPValue) {
  for (int dof : {1, 2, 5, 10}) {
    for (double alpha : {0.05, 0.01, 0.001}) {
      double crit = ChiSquaredCritical(alpha, dof);
      EXPECT_NEAR(ChiSquaredPValue(crit, dof), alpha, 1e-6)
          << "dof=" << dof << " alpha=" << alpha;
    }
  }
}

TEST(ChiSquaredTestOfIndependence, KnownTwoByTwo) {
  // [[10, 20], [30, 40]]: expected [[12, 18], [28, 42]], so chi2 =
  // 4/12 + 4/18 + 4/28 + 4/42 = 0.793650... (no Yates).
  ContingencyTable t(2, 2);
  t.set_cell(0, 0, 10);
  t.set_cell(0, 1, 20);
  t.set_cell(1, 0, 30);
  t.set_cell(1, 1, 40);
  ChiSquaredResult res = ChiSquaredTest(t);
  ASSERT_TRUE(res.valid);
  EXPECT_EQ(res.dof, 1);
  EXPECT_NEAR(res.statistic, 0.7936507936507937, 1e-8);
  EXPECT_GT(res.p_value, 0.05);
}

TEST(ChiSquaredTestOfIndependence, StrongDependence) {
  ContingencyTable t(2, 2);
  t.set_cell(0, 0, 90);
  t.set_cell(0, 1, 10);
  t.set_cell(1, 0, 10);
  t.set_cell(1, 1, 90);
  ChiSquaredResult res = ChiSquaredTest(t);
  ASSERT_TRUE(res.valid);
  EXPECT_LT(res.p_value, 1e-10);
}

TEST(ChiSquaredTestOfIndependence, YatesShrinksStatistic) {
  ContingencyTable t(2, 2);
  t.set_cell(0, 0, 12);
  t.set_cell(0, 1, 8);
  t.set_cell(1, 0, 6);
  t.set_cell(1, 1, 14);
  double plain = ChiSquaredTest(t, false).statistic;
  double yates = ChiSquaredTest(t, true).statistic;
  EXPECT_LT(yates, plain);
}

TEST(ChiSquaredTestOfIndependence, DegenerateTableInvalid) {
  ContingencyTable t(2, 2);
  t.set_cell(0, 0, 5);
  t.set_cell(0, 1, 7);
  // Second row all zero -> only one live row.
  ChiSquaredResult res = ChiSquaredTest(t);
  EXPECT_FALSE(res.valid);
  EXPECT_DOUBLE_EQ(res.p_value, 1.0);
}

TEST(ChiSquaredTestOfIndependence, DropsEmptyColumns) {
  // 2x3 with an all-zero middle column -> dof (2-1)*(2-1) = 1.
  ContingencyTable t(2, 3);
  t.set_cell(0, 0, 10);
  t.set_cell(0, 2, 20);
  t.set_cell(1, 0, 30);
  t.set_cell(1, 2, 15);
  ChiSquaredResult res = ChiSquaredTest(t);
  ASSERT_TRUE(res.valid);
  EXPECT_EQ(res.dof, 1);
}

TEST(ChiSquaredPresenceTest, MatchesManualTable) {
  // Pattern matched 80/200 in g0 and 20/100 in g1.
  ChiSquaredResult res = ChiSquaredPresenceTest({80, 20}, {200, 100});
  ContingencyTable t(2, 2);
  t.set_cell(0, 0, 80);
  t.set_cell(0, 1, 20);
  t.set_cell(1, 0, 120);
  t.set_cell(1, 1, 80);
  ChiSquaredResult manual = ChiSquaredTest(t);
  ASSERT_TRUE(res.valid);
  EXPECT_NEAR(res.statistic, manual.statistic, 1e-12);
}

TEST(ContingencyTableTest, MarginalsAndExpected) {
  ContingencyTable t(2, 2);
  t.set_cell(0, 0, 10);
  t.set_cell(0, 1, 30);
  t.set_cell(1, 0, 20);
  t.set_cell(1, 1, 40);
  EXPECT_DOUBLE_EQ(t.RowTotal(0), 40);
  EXPECT_DOUBLE_EQ(t.ColTotal(1), 70);
  EXPECT_DOUBLE_EQ(t.GrandTotal(), 100);
  EXPECT_DOUBLE_EQ(t.Expected(0, 0), 40.0 * 30.0 / 100.0);
  EXPECT_DOUBLE_EQ(t.MinExpected(), 40.0 * 30.0 / 100.0);
  EXPECT_TRUE(t.AllExpectedAtLeast(12.0));
  EXPECT_FALSE(t.AllExpectedAtLeast(12.1));
}

TEST(ContingencyTableTest, AddAccumulates) {
  ContingencyTable t(2, 2);
  t.Add(0, 0);
  t.Add(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(t.cell(0, 0), 3.0);
}

}  // namespace
}  // namespace sdadcs::stats
