#include "stats/normal.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sdadcs::stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(NormalPdfTest, PeakAndSymmetry) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(NormalPdf(1.3), NormalPdf(-1.3), 1e-15);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantileTest, KnownCriticalValues) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.95), 1.6448536269514722, 1e-8);
}

TEST(TwoSidedCriticalZTest, MatchesQuantile) {
  EXPECT_NEAR(TwoSidedCriticalZ(0.05), 1.959963984540054, 1e-8);
  EXPECT_NEAR(TwoSidedCriticalZ(0.01), 2.5758293035489004, 1e-8);
}

}  // namespace
}  // namespace sdadcs::stats
