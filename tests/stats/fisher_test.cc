#include "stats/fisher.h"

#include <gtest/gtest.h>

namespace sdadcs::stats {
namespace {

TEST(FisherTwoSidedTest, ClassicTeaTasting) {
  // Fisher's lady-tasting-tea table [[3,1],[1,3]]: two-sided p ~ 0.4857.
  EXPECT_NEAR(FisherExactTwoSided(3, 1, 1, 3), 0.48571428571, 1e-8);
}

TEST(FisherTwoSidedTest, ExtremeTableIsSmall) {
  // [[10,0],[0,10]]: p = 2 / C(20,10) ~ 1.0825e-5.
  EXPECT_NEAR(FisherExactTwoSided(10, 0, 0, 10), 2.0 / 184756.0, 1e-10);
}

TEST(FisherTwoSidedTest, IndependentTableIsLarge) {
  EXPECT_GT(FisherExactTwoSided(20, 20, 20, 20), 0.9);
}

TEST(FisherTwoSidedTest, EmptyTableIsOne) {
  EXPECT_DOUBLE_EQ(FisherExactTwoSided(0, 0, 0, 0), 1.0);
}

TEST(FisherGreaterTest, KnownValue) {
  // One-sided (greater) for [[3,1],[1,3]]: p = P(a>=3) =
  // [C(4,3)C(4,1) + C(4,4)C(4,0)] / C(8,4) = (16+1)/70.
  EXPECT_NEAR(FisherExactGreater(3, 1, 1, 3), 17.0 / 70.0, 1e-10);
}

TEST(FisherGreaterTest, MaximalAIsMinimalP) {
  double p_max = FisherExactGreater(4, 0, 0, 4);
  EXPECT_NEAR(p_max, 1.0 / 70.0, 1e-10);
}

TEST(FisherGreaterTest, MinimalAIsOne) {
  EXPECT_NEAR(FisherExactGreater(0, 4, 4, 0), 1.0, 1e-10);
}

TEST(FisherTest, SymmetryUnderTransposition) {
  // Transposing the table leaves the two-sided p unchanged.
  EXPECT_NEAR(FisherExactTwoSided(5, 2, 3, 8),
              FisherExactTwoSided(5, 3, 2, 8), 1e-10);
}

}  // namespace
}  // namespace sdadcs::stats
