#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sdadcs::stats {
namespace {

TEST(MeanTest, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_TRUE(std::isnan(Mean({})));
}

TEST(SampleVarianceTest, KnownValue) {
  EXPECT_DOUBLE_EQ(SampleVariance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0);
  EXPECT_TRUE(std::isnan(SampleVariance({1})));
}

TEST(MedianTest, OddEvenEmpty) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.0);  // lower middle
  EXPECT_TRUE(std::isnan(Median({})));
}

TEST(EntropyTest, UniformIsLogK) {
  EXPECT_NEAR(EntropyFromCounts({10, 10}), 1.0, 1e-12);
  EXPECT_NEAR(EntropyFromCounts({5, 5, 5, 5}), 2.0, 1e-12);
}

TEST(EntropyTest, PureIsZero) {
  EXPECT_DOUBLE_EQ(EntropyFromCounts({42, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({}), 0.0);
}

TEST(EntropyTest, SkewBetweenZeroAndLogK) {
  double h = EntropyFromCounts({90, 10});
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, 1.0);
  EXPECT_NEAR(h, 0.4689955935892812, 1e-10);
}

TEST(BonferroniTest, DividesByTests) {
  EXPECT_DOUBLE_EQ(BonferroniAlpha(0.05, 10), 0.005);
  EXPECT_DOUBLE_EQ(BonferroniAlpha(0.05, 0), 0.05);
}

}  // namespace
}  // namespace sdadcs::stats
