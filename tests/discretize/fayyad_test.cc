#include "discretize/fayyad.h"

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/random.h"

namespace sdadcs::discretize {
namespace {

TEST(FayyadTest, CleanBoundaryFound) {
  // Class flips exactly at value 49/50 with plenty of data: MDL accepts.
  std::vector<LabeledValue> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back({static_cast<double>(i), i < 50 ? 0 : 1});
  }
  std::vector<double> cuts =
      FayyadMdlDiscretizer::CutsForSortedValues(values, 2);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_DOUBLE_EQ(cuts[0], 49.0);
}

TEST(FayyadTest, PureClassNoCuts) {
  std::vector<LabeledValue> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back({static_cast<double>(i), 0});
  }
  EXPECT_TRUE(FayyadMdlDiscretizer::CutsForSortedValues(values, 2).empty());
}

TEST(FayyadTest, RandomLabelsRejectedByMdl) {
  util::Rng rng(3);
  std::vector<LabeledValue> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back({static_cast<double>(i),
                      rng.Bernoulli(0.5) ? 0 : 1});
  }
  std::vector<double> cuts =
      FayyadMdlDiscretizer::CutsForSortedValues(values, 2);
  // The MDL criterion suppresses spurious splits on noise (a couple may
  // survive by chance, but nothing like a real structure).
  EXPECT_LE(cuts.size(), 2u);
}

TEST(FayyadTest, RecursiveSplitsFindThreeSegments) {
  // 0..49 class 0, 50..99 class 1, 100..149 class 0 -> two boundaries.
  std::vector<LabeledValue> values;
  for (int i = 0; i < 150; ++i) {
    int cls = (i >= 50 && i < 100) ? 1 : 0;
    values.push_back({static_cast<double>(i), cls});
  }
  std::vector<double> cuts =
      FayyadMdlDiscretizer::CutsForSortedValues(values, 2);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_DOUBLE_EQ(cuts[0], 49.0);
  EXPECT_DOUBLE_EQ(cuts[1], 99.0);
}

TEST(FayyadTest, TiedValuesNeverSplitApart) {
  // All rows share one value: no cut can exist.
  std::vector<LabeledValue> values;
  for (int i = 0; i < 60; ++i) {
    values.push_back({7.0, i % 2});
  }
  EXPECT_TRUE(FayyadMdlDiscretizer::CutsForSortedValues(values, 2).empty());
}

TEST(FayyadTest, DiscretizeOverDataset) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  int noise = b.AddContinuous("noise");
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    b.AppendCategorical(g, i < 100 ? "a" : "b");
    b.AppendContinuous(x, i);  // splits perfectly at 99
    b.AppendContinuous(noise, rng.NextDouble());
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  ASSERT_TRUE(gi.ok());
  FayyadMdlDiscretizer disc;
  auto bins = disc.Discretize(*db, *gi, {1, 2});
  ASSERT_EQ(bins.size(), 2u);
  ASSERT_EQ(bins[0].cuts.size(), 1u);
  EXPECT_DOUBLE_EQ(bins[0].cuts[0], 99.0);
  EXPECT_TRUE(bins[1].cuts.empty());  // noise: no structure
  EXPECT_EQ(disc.name(), "fayyad_mdl");
}

}  // namespace
}  // namespace sdadcs::discretize
