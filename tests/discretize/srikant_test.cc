#include "discretize/srikant.h"

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/random.h"

namespace sdadcs::discretize {
namespace {

struct Fixture {
  data::Dataset db;
  data::GroupInfo gi;
};

Fixture MakeUniform(int n) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(51);
  for (int i = 0; i < n; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    b.AppendContinuous(x, rng.NextDouble());
  }
  auto db = std::move(b).Build();
  SDADCS_CHECK(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  SDADCS_CHECK(gi.ok());
  return {std::move(db).value(), std::move(gi).value()};
}

TEST(SrikantTest, UniformDataKeepsAllPartitions) {
  Fixture f = MakeUniform(1000);
  SrikantDiscretizer::Options opt;
  opt.initial_partitions = 10;
  opt.minsup = 0.05;  // each partition holds ~0.1 > minsup
  SrikantDiscretizer disc(opt);
  auto bins = disc.Discretize(f.db, f.gi, {1});
  EXPECT_EQ(bins[0].cuts.size(), 9u);
}

TEST(SrikantTest, UndersizedPartitionsMerge) {
  // Heavy point mass at 0.5 with thin uniform tails: equal-frequency
  // cuts collapse around the mass, and the thin outer partitions fall
  // below minsup and merge.
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(52);
  for (int i = 0; i < 1000; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    b.AppendContinuous(x, i < 900 ? 0.5 : rng.NextDouble());
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  ASSERT_TRUE(gi.ok());
  SrikantDiscretizer::Options opt;
  opt.initial_partitions = 10;
  opt.minsup = 0.08;
  SrikantDiscretizer disc(opt);
  auto bins = disc.Discretize(*db, *gi, {1});
  EXPECT_LE(bins[0].cuts.size(), 3u);
  // Every resulting bin must satisfy minsup.
  const auto& col = db->continuous(1);
  std::vector<double> counts(bins[0].num_bins(), 0.0);
  for (uint32_t r = 0; r < db->num_rows(); ++r) {
    counts[bins[0].BinOf(col.value(r))] += 1.0;
  }
  for (double c : counts) {
    EXPECT_GE(c, 0.08 * 1000.0);
  }
}

TEST(SrikantTest, HighMinsupMergesEverything) {
  Fixture f = MakeUniform(100);
  SrikantDiscretizer::Options opt;
  opt.initial_partitions = 10;
  opt.minsup = 0.6;  // no partition can satisfy this -> all merge
  SrikantDiscretizer disc(opt);
  auto bins = disc.Discretize(f.db, f.gi, {1});
  EXPECT_TRUE(bins[0].cuts.empty());
}

TEST(SrikantTest, SingleValueDataNoCuts) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 0; i < 50; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    b.AppendContinuous(x, 7.0);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  ASSERT_TRUE(gi.ok());
  SrikantDiscretizer disc;
  auto bins = disc.Discretize(*db, *gi, {1});
  EXPECT_TRUE(bins[0].cuts.empty());
}

TEST(SrikantTest, NameStable) {
  EXPECT_EQ(SrikantDiscretizer().name(), "srikant");
}

}  // namespace
}  // namespace sdadcs::discretize
