#include "discretize/mvd.h"

#include <gtest/gtest.h>

#include "synth/simulated.h"
#include "util/logging.h"
#include "util/random.h"

namespace sdadcs::discretize {
namespace {

MvdDiscretizer::Options SmallDataOptions() {
  MvdDiscretizer::Options opt;
  opt.instances_per_bin = 50;
  return opt;
}

TEST(MvdTest, PureNoiseCollapsesToFewBins) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    b.AppendCategorical(g, rng.Bernoulli(0.5) ? "a" : "b");
    b.AppendContinuous(x, rng.NextDouble());
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  ASSERT_TRUE(gi.ok());
  MvdDiscretizer disc(SmallDataOptions());
  auto bins = disc.Discretize(*db, *gi, {1});
  ASSERT_EQ(bins.size(), 1u);
  // With no structure anywhere, nearly everything merges.
  EXPECT_LE(bins[0].cuts.size(), 2u);
}

TEST(MvdTest, ClassBoundaryPreserved) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(22);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    b.AppendCategorical(g, v < 0.5 ? "a" : "b");
    b.AppendContinuous(x, v);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  ASSERT_TRUE(gi.ok());
  MvdDiscretizer disc(SmallDataOptions());
  auto bins = disc.Discretize(*db, *gi, {1});
  ASSERT_FALSE(bins[0].cuts.empty());
  bool near_half = false;
  for (double c : bins[0].cuts) {
    if (std::fabs(c - 0.5) < 0.08) near_half = true;
  }
  EXPECT_TRUE(near_half);
}

TEST(MvdTest, DetectsMultivariateStructureOnXData) {
  // Figure 3b: no univariate class signal, but the joint tests (other
  // attribute x group) must keep interior boundaries alive.
  data::Dataset db = synth::MakeSimulated2(1500);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  MvdDiscretizer disc(SmallDataOptions());
  auto bins = disc.Discretize(db, *gi, {1, 2});
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_FALSE(bins[0].cuts.empty());
  EXPECT_FALSE(bins[1].cuts.empty());
}

TEST(MvdTest, TinyDataNoCuts) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 0; i < 3; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    b.AppendContinuous(x, i);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  ASSERT_TRUE(gi.ok());
  MvdDiscretizer disc;
  auto bins = disc.Discretize(*db, *gi, {1});
  EXPECT_TRUE(bins[0].cuts.empty());
}

TEST(MvdTest, NameStable) {
  EXPECT_EQ(MvdDiscretizer().name(), "mvd");
}

}  // namespace
}  // namespace sdadcs::discretize
