#include "discretize/binned_miner.h"

#include <gtest/gtest.h>

#include "discretize/equal_bins.h"
#include "discretize/fayyad.h"
#include "synth/simulated.h"
#include "util/logging.h"

namespace sdadcs::discretize {
namespace {

TEST(BinnedMinerTest, FindsContrastsWithGoodBins) {
  data::Dataset db = synth::MakeSimulated3(1000);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  FayyadMdlDiscretizer disc;
  BinnedMinerConfig cfg;
  cfg.max_depth = 2;
  BinnedMinerStats stats;
  auto patterns = DiscretizeAndMine(db, *gi, disc, cfg, &stats);
  ASSERT_FALSE(patterns.empty());
  EXPECT_GT(stats.partitions_evaluated, 0u);
  // The strongest pattern separates on Attr1 near 0.5.
  const core::ContrastPattern& top = patterns.front();
  EXPECT_GT(top.diff, 0.8);
}

TEST(BinnedMinerTest, PatternsAreLargeAndSignificant) {
  data::Dataset db = synth::MakeSimulated3(800);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BinnedMinerConfig cfg;
  cfg.delta = 0.15;
  auto patterns =
      DiscretizeAndMine(db, *gi, FayyadMdlDiscretizer(), cfg);
  for (const core::ContrastPattern& p : patterns) {
    EXPECT_GT(p.diff, cfg.delta);
    EXPECT_LT(p.p_value, cfg.alpha);
  }
}

TEST(BinnedMinerTest, SingleBinAttributeContributesNothing) {
  data::Dataset db = synth::MakeSimulated3(500);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  // Hand-made bins: Attr2 gets no cuts -> only Attr1 items exist.
  AttributeBins a1;
  a1.attr = 1;
  a1.cuts = {0.5};
  AttributeBins a2;
  a2.attr = 2;
  BinnedMinerConfig cfg;
  auto patterns = MineWithBins(db, *gi, {a1, a2}, {}, cfg);
  for (const core::ContrastPattern& p : patterns) {
    for (const core::Item& it : p.itemset.items()) {
      EXPECT_EQ(it.attr, 1);
    }
  }
  EXPECT_FALSE(patterns.empty());
}

TEST(BinnedMinerTest, CategoricalAttributesMined) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int c = b.AddCategorical("c");
  for (int i = 0; i < 400; ++i) {
    bool in_a = i % 2 == 0;
    b.AppendCategorical(g, in_a ? "a" : "b");
    // c=v0 heavily associated with group a.
    b.AppendCategorical(c, (in_a && i % 10 < 8) ? "v0" : "v1");
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  ASSERT_TRUE(gi.ok());
  BinnedMinerConfig cfg;
  auto patterns = MineWithBins(*db, *gi, {}, {1}, cfg);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns.front().itemset.item(0).kind,
            core::Item::Kind::kCategorical);
}

TEST(BinnedMinerTest, DepthLimitsItemCount) {
  data::Dataset db = synth::MakeSimulated4(800);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BinnedMinerConfig cfg;
  cfg.max_depth = 1;
  auto patterns =
      DiscretizeAndMine(db, *gi, EqualFrequencyDiscretizer(4), cfg);
  for (const core::ContrastPattern& p : patterns) {
    EXPECT_EQ(p.itemset.size(), 1u);
  }
}

TEST(BinnedMinerTest, GlobalBinsMissXorStructure) {
  // The motivating failure of pre-binning pipelines: on XOR data the
  // per-attribute Fayyad discretizer finds no bins at all, so the
  // binned miner finds nothing — while SDAD-CS (core tests) does.
  data::Dataset db = synth::MakeSimulated2(1200);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BinnedMinerConfig cfg;
  cfg.max_depth = 2;
  auto patterns =
      DiscretizeAndMine(db, *gi, FayyadMdlDiscretizer(), cfg);
  EXPECT_TRUE(patterns.empty());
}

}  // namespace
}  // namespace sdadcs::discretize
