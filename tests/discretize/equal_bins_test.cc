#include "discretize/equal_bins.h"

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/random.h"

namespace sdadcs::discretize {
namespace {

struct Fixture {
  data::Dataset db;
  data::GroupInfo gi;
};

Fixture MakeFixture() {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 0; i < 100; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    b.AppendContinuous(x, i);
  }
  auto db = std::move(b).Build();
  SDADCS_CHECK(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  SDADCS_CHECK(gi.ok());
  return {std::move(db).value(), std::move(gi).value()};
}

TEST(AttributeBinsTest, BinOfAndBounds) {
  AttributeBins bins;
  bins.cuts = {10.0, 20.0};
  EXPECT_EQ(bins.num_bins(), 3u);
  EXPECT_EQ(bins.BinOf(5.0), 0u);
  EXPECT_EQ(bins.BinOf(10.0), 0u);  // bins are (lo, hi]
  EXPECT_EQ(bins.BinOf(10.5), 1u);
  EXPECT_EQ(bins.BinOf(25.0), 2u);
  double lo;
  double hi;
  bins.BoundsOf(0, &lo, &hi);
  EXPECT_TRUE(std::isinf(lo));
  EXPECT_DOUBLE_EQ(hi, 10.0);
  bins.BoundsOf(2, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, 20.0);
  EXPECT_TRUE(std::isinf(hi));
}

TEST(EqualWidthTest, EvenCutSpacing) {
  Fixture f = MakeFixture();
  EqualWidthDiscretizer disc(4);
  auto bins = disc.Discretize(f.db, f.gi, {1});
  ASSERT_EQ(bins.size(), 1u);
  ASSERT_EQ(bins[0].cuts.size(), 3u);
  EXPECT_NEAR(bins[0].cuts[0], 24.75, 1e-9);
  EXPECT_NEAR(bins[0].cuts[1], 49.5, 1e-9);
  EXPECT_NEAR(bins[0].cuts[2], 74.25, 1e-9);
}

TEST(EqualWidthTest, ConstantColumnNoCuts) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 0; i < 10; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    b.AppendContinuous(x, 5.0);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  ASSERT_TRUE(gi.ok());
  EqualWidthDiscretizer disc(4);
  auto bins = disc.Discretize(*db, *gi, {1});
  EXPECT_TRUE(bins[0].cuts.empty());
}

TEST(EqualFrequencyTest, BalancedBinCounts) {
  Fixture f = MakeFixture();
  EqualFrequencyDiscretizer disc(4);
  auto bins = disc.Discretize(f.db, f.gi, {1});
  ASSERT_EQ(bins[0].cuts.size(), 3u);
  // 100 values 0..99 -> cuts at ranks 24, 49, 74.
  EXPECT_DOUBLE_EQ(bins[0].cuts[0], 24.0);
  EXPECT_DOUBLE_EQ(bins[0].cuts[1], 49.0);
  EXPECT_DOUBLE_EQ(bins[0].cuts[2], 74.0);
}

TEST(EqualFrequencyCutsTest, CollapsesTies) {
  // Heavy ties: most mass at one value -> fewer distinct cuts.
  std::vector<double> sorted(100, 5.0);
  for (int i = 0; i < 10; ++i) sorted.push_back(6.0 + i);
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cuts = EqualFrequencyCuts(sorted, 4);
  for (size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_LT(cuts[i - 1], cuts[i]);
  }
  EXPECT_LE(cuts.size(), 3u);
}

TEST(EqualFrequencyCutsTest, TinyInputNoCuts) {
  EXPECT_TRUE(EqualFrequencyCuts({1.0}, 4).empty());
  EXPECT_TRUE(EqualFrequencyCuts({}, 4).empty());
}

TEST(DiscretizerNameTest, Names) {
  EXPECT_EQ(EqualWidthDiscretizer(3).name(), "equal_width");
  EXPECT_EQ(EqualFrequencyDiscretizer(3).name(), "equal_frequency");
}

}  // namespace
}  // namespace sdadcs::discretize
