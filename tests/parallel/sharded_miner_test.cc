#include "parallel/sharded_miner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/requests.h"
#include "core/contrast.h"
#include "synth/scaling.h"
#include "synth/simulated.h"
#include "synth/uci_like.h"
#include "util/timer.h"

namespace sdadcs::parallel {
namespace {

using test_support::GroupRequest;

core::MinerConfig BaseConfig() {
  core::MinerConfig cfg;
  cfg.max_depth = 2;
  return cfg;
}

// Byte-exact rendering (same shape as the integration differential
// goldens): itemset key, exact counts, full-precision statistics.
std::string Render(const std::vector<core::ContrastPattern>& patterns) {
  std::string out;
  char buf[512];
  for (const core::ContrastPattern& p : patterns) {
    out += p.itemset.Key();
    for (double c : p.counts) {
      std::snprintf(buf, sizeof(buf), " %.17g", c);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  " | diff=%.17g measure=%.17g chi2=%.17g p=%.17g\n",
                  p.diff, p.measure, p.chi2, p.p_value);
    out += buf;
  }
  return out;
}

TEST(ShardedMinerTest, ByteIdenticalToSerialIncludingCounters) {
  // Stronger than the pattern-set equality the level-parallel miner can
  // promise: the sharded coordinator replays the serial decision order
  // exactly, so rendered output AND node counters must match.
  synth::ScalingOptions opt;
  opt.rows = 12000;
  opt.continuous_features = 6;
  opt.categorical_features = 3;
  synth::NamedDataset sc = synth::MakeScalingDataset(opt);
  core::MinerConfig cfg = BaseConfig();

  auto serial = core::Miner(cfg).Mine(sc.db, GroupRequest(sc.group_attr));
  ASSERT_TRUE(serial.ok());
  for (size_t shards : {1u, 3u, 4u, 7u}) {
    auto sharded =
        ShardedMiner(cfg, shards).Mine(sc.db, GroupRequest(sc.group_attr));
    ASSERT_TRUE(sharded.ok()) << shards << " shards";
    EXPECT_EQ(Render(serial->contrasts), Render(sharded->contrasts))
        << shards << " shards";
    EXPECT_EQ(serial->counters.partitions_evaluated,
              sharded->counters.partitions_evaluated)
        << shards << " shards";
    EXPECT_EQ(serial->counters.sdad_calls, sharded->counters.sdad_calls)
        << shards << " shards";
  }
}

TEST(ShardedMinerTest, MoreShardsThanRowsStillExact) {
  // ShardPlan caps the shard count at the row count; surplus shards
  // simply vanish instead of producing empty-range corner cases.
  data::Dataset db = synth::MakeSimulated3(300);
  auto serial = core::Miner(BaseConfig()).Mine(db, GroupRequest("Group"));
  auto sharded =
      ShardedMiner(BaseConfig(), 1000).Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(Render(serial->contrasts), Render(sharded->contrasts));
}

TEST(ShardedMinerTest, ZeroShardsResolvesToHardwareConcurrency) {
  ShardedMiner miner(BaseConfig(), 0);
  size_t expected = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(miner.num_shards(), expected);
  data::Dataset db = synth::MakeSimulated3(300);
  auto result = miner.Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completion, core::Completion::kComplete);
}

TEST(ShardedMinerTest, InvalidConfigAndUnknownGroupRejected) {
  data::Dataset db = synth::MakeSimulated3(300);
  core::MinerConfig bad = BaseConfig();
  bad.alpha = 1.5;
  auto result = ShardedMiner(bad, 2).Mine(db, GroupRequest("Group"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("alpha"), std::string::npos);
  EXPECT_FALSE(
      ShardedMiner(BaseConfig(), 2).Mine(db, GroupRequest("nope")).ok());
}

// A dataset big enough that (a) counting scans actually fan out (rows
// past the min-fanout floor) and (b) the full run takes far longer than
// the stop round-trips asserted below.
synth::NamedDataset BigDataset() {
  synth::ScalingOptions opt;
  opt.rows = 20000;
  opt.continuous_features = 40;
  opt.categorical_features = 10;
  return synth::MakeScalingDataset(opt);
}

void ExpectSortedByMeasure(const std::vector<core::ContrastPattern>& ps) {
  for (size_t i = 1; i < ps.size(); ++i) {
    EXPECT_GE(ps[i - 1].measure, ps[i].measure) << "rank " << i;
  }
}

TEST(ShardedMinerTest, CancelAtMergeBarrierDrainsSortedPartials) {
  // Cancel lands while shard fan-outs are in flight; the coordinator
  // observes it at the next merge-barrier checkpoint, the level drains,
  // and the partial top-k comes back sorted with completion kCancelled.
  synth::NamedDataset sc = BigDataset();
  core::MinerConfig cfg = BaseConfig();
  cfg.max_depth = 3;

  util::RunControl control;
  core::MineRequest request;
  request.group_attr = sc.group_attr;
  request.run_control = control;

  util::StatusOr<core::MiningResult> result =
      util::Status::Internal("not run");
  std::thread worker([&] {
    result = ShardedMiner(cfg, 4).Mine(sc.db, request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  util::WallTimer unblock;
  control.Cancel();
  worker.join();
  EXPECT_LT(unblock.Seconds(), 0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completion, core::Completion::kCancelled);
  ExpectSortedByMeasure(result->contrasts);
}

TEST(ShardedMinerTest, DeadlineDrainsSortedPartialsWithCompletion) {
  synth::NamedDataset sc = BigDataset();
  core::MinerConfig cfg = BaseConfig();
  cfg.max_depth = 3;

  util::RunControl control;
  control.set_deadline_after(std::chrono::milliseconds(60));
  core::MineRequest request;
  request.group_attr = sc.group_attr;
  request.run_control = control;

  util::WallTimer timer;
  auto result = ShardedMiner(cfg, 4).Mine(sc.db, request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completion, core::Completion::kDeadlineExceeded);
  // The drain must be prompt: well under the unbounded runtime.
  EXPECT_LT(timer.Seconds(), 2.0);
  ExpectSortedByMeasure(result->contrasts);
}

TEST(ShardedMinerTest, NodeBudgetDrainsSortedPartialsWithCompletion) {
  synth::NamedDataset sc = BigDataset();
  core::MinerConfig cfg = BaseConfig();
  cfg.max_depth = 3;

  util::RunControl control;
  control.set_node_budget(2000);
  core::MineRequest request;
  request.group_attr = sc.group_attr;
  request.run_control = control;

  auto result = ShardedMiner(cfg, 4).Mine(sc.db, request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completion, core::Completion::kBudgetExhausted);
  EXPECT_GT(result->counters.abandoned_candidates, 0u);
  ExpectSortedByMeasure(result->contrasts);
}

TEST(ShardedMinerTest, SeededRunMatchesUnseededExactly) {
  // The seed-floor retry loop is copied from the serial miner; make sure
  // the sharded engine kept the a-posteriori guard intact.
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/7);
  core::MinerConfig cfg = BaseConfig();
  cfg.top_k = 50;
  auto plain = ShardedMiner(cfg, 4).Mine(
      nd.db, GroupRequest(nd.group_attr, nd.groups));
  ASSERT_TRUE(plain.ok());

  cfg.seed_sample_rows = 200;
  auto seeded = ShardedMiner(cfg, 4).Mine(
      nd.db, GroupRequest(nd.group_attr, nd.groups));
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(Render(plain->contrasts), Render(seeded->contrasts));
}

}  // namespace
}  // namespace sdadcs::parallel
