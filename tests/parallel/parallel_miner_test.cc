#include "parallel/parallel_miner.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/requests.h"
#include "synth/scaling.h"
#include "synth/simulated.h"
#include "synth/uci_like.h"
#include "util/timer.h"

namespace sdadcs::parallel {
namespace {

using test_support::GroupRequest;

core::MinerConfig BaseConfig() {
  core::MinerConfig cfg;
  cfg.max_depth = 2;
  return cfg;
}

TEST(ParallelMinerTest, FindsSamePatternsAsSerial) {
  data::Dataset db = synth::MakeSimulated4(1500);
  core::MinerConfig cfg = BaseConfig();
  auto serial = core::Miner(cfg).Mine(db, GroupRequest("Group"));
  auto parallel = ParallelMiner(cfg, 4).Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  // Workers lose some cross-subtree pruning but the pattern *set* of
  // this small problem is identical.
  std::set<std::string> serial_keys;
  for (const auto& p : serial->contrasts) {
    serial_keys.insert(p.itemset.Key());
  }
  std::set<std::string> parallel_keys;
  for (const auto& p : parallel->contrasts) {
    parallel_keys.insert(p.itemset.Key());
  }
  EXPECT_EQ(serial_keys, parallel_keys);
}

TEST(ParallelMinerTest, SingleThreadWorks) {
  data::Dataset db = synth::MakeSimulated3(600);
  auto result = ParallelMiner(BaseConfig(), 1).Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->contrasts.empty());
}

TEST(ParallelMinerTest, ZeroThreadsResolvesToHardwareConcurrency) {
  ParallelMiner miner(BaseConfig(), 0);
  size_t expected = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(miner.num_threads(), expected);
  data::Dataset db = synth::MakeSimulated3(300);
  auto result = miner.Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completion, core::Completion::kComplete);
}

TEST(ParallelMinerTest, InvalidConfigRejected) {
  core::MinerConfig cfg = BaseConfig();
  cfg.alpha = 1.5;
  data::Dataset db = synth::MakeSimulated3(300);
  auto result = ParallelMiner(cfg, 2).Mine(db, GroupRequest("Group"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("alpha"), std::string::npos);
}

TEST(ParallelMinerTest, CancelFromSecondThreadUnblocksQuickly) {
  // Big enough that the unbounded run takes far longer than the cancel
  // round-trip the test asserts on.
  synth::ScalingOptions opt;
  opt.rows = 20000;
  opt.continuous_features = 40;
  opt.categorical_features = 10;
  synth::NamedDataset sc = synth::MakeScalingDataset(opt);
  core::MinerConfig cfg = BaseConfig();
  cfg.max_depth = 3;

  util::RunControl control;
  core::MineRequest request;
  request.group_attr = sc.group_attr;
  request.run_control = control;

  util::StatusOr<core::MiningResult> result =
      util::Status::Internal("not run");
  std::thread worker([&] {
    result = ParallelMiner(cfg, 4).Mine(sc.db, request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  util::WallTimer unblock;
  control.Cancel();
  worker.join();
  // Cancellation must reach every worker within 100 ms.
  EXPECT_LT(unblock.Seconds(), 0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completion, core::Completion::kCancelled);
}

TEST(ParallelMinerTest, UnknownGroupAttrRejected) {
  data::Dataset db = synth::MakeSimulated3(300);
  EXPECT_FALSE(
      ParallelMiner(BaseConfig(), 2).Mine(db, GroupRequest("nope")).ok());
}

TEST(ParallelMinerTest, XorStructureSurvivesParallelism) {
  // Aliveness pooling across workers must still generate the joint
  // combination at level 2.
  data::Dataset db = synth::MakeSimulated2(1200);
  core::MinerConfig cfg = BaseConfig();
  cfg.measure = core::MeasureKind::kSurprising;
  auto result = ParallelMiner(cfg, 3).Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(result.ok());
  bool has_bivariate = false;
  for (const auto& p : result->contrasts) {
    if (p.itemset.size() == 2) has_bivariate = true;
  }
  EXPECT_TRUE(has_bivariate);
}

TEST(ParallelMinerTest, GroupValueSelectionWorks) {
  synth::NamedDataset adult = synth::MakeAdultLike();
  core::MinerConfig cfg = BaseConfig();
  cfg.attributes = {"age", "occupation"};
  auto result = ParallelMiner(cfg, 2).Mine(
      adult.db, GroupRequest(adult.group_attr, adult.groups));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->contrasts.empty());
  EXPECT_EQ(result->group_names,
            (std::vector<std::string>{"Doctorate", "Bachelors"}));
}

// Property sweep: parallel result set == serial result set across the
// simulated datasets and both pruning modes.
using EquivParams = std::tuple<int, bool>;

class ParallelEquivalence : public testing::TestWithParam<EquivParams> {};

TEST_P(ParallelEquivalence, MatchesSerialPatternSet) {
  const auto& [which, meaningful] = GetParam();
  data::Dataset db = which == 1   ? synth::MakeSimulated1(800)
                     : which == 2 ? synth::MakeSimulated2(800)
                     : which == 3 ? synth::MakeSimulated3(800)
                                  : synth::MakeSimulated4(1200);
  core::MinerConfig cfg = BaseConfig();
  cfg.meaningful_pruning = meaningful;
  auto serial = core::Miner(cfg).Mine(db, GroupRequest("Group"));
  auto par = ParallelMiner(cfg, 3).Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(par.ok());
  std::set<std::string> a;
  std::set<std::string> b;
  for (const auto& p : serial->contrasts) a.insert(p.itemset.Key());
  for (const auto& p : par->contrasts) b.insert(p.itemset.Key());
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelEquivalence,
    testing::Combine(testing::Values(1, 2, 3, 4), testing::Bool()),
    [](const testing::TestParamInfo<EquivParams>& info) {
      return "sim" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_pruned" : "_np");
    });

TEST(ParallelMinerTest, WideDatasetCompletes) {
  synth::ScalingOptions opt;
  opt.rows = 3000;
  opt.continuous_features = 15;
  opt.categorical_features = 5;
  synth::NamedDataset sc = synth::MakeScalingDataset(opt);
  core::MinerConfig cfg = BaseConfig();
  auto result = ParallelMiner(cfg, 4).Mine(sc.db, GroupRequest(sc.group_attr));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->counters.partitions_evaluated, 0u);
  EXPECT_FALSE(result->contrasts.empty());
}

}  // namespace
}  // namespace sdadcs::parallel
