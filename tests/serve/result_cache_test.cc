// ResultCache: LRU storage, single-flight coalescing, the
// only-cache-complete-results invariant, dataset invalidation and the
// counters the stats op reports.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/miner.h"
#include "core/request_key.h"
#include "gtest/gtest.h"
#include "serve/result_cache.h"
#include "util/run_control.h"

namespace sdadcs::serve {
namespace {

core::RequestKey Key(uint64_t n) {
  // Distinct synthetic keys; the real canonicalization is covered by
  // core/fingerprint_test.
  return core::RequestKey{n * 0x9e3779b97f4a7c15ULL + 1, n};
}

ResultCache::ResultPtr MakeResult(
    double marker, core::Completion completion = core::Completion::kComplete) {
  auto r = std::make_shared<core::MiningResult>();
  r->elapsed_seconds = marker;  // lets tests tell results apart
  r->completion = completion;
  return r;
}

TEST(ResultCacheTest, MissPublishHit) {
  ResultCache cache(8);
  ResultCache::Lookup miss = cache.Acquire(Key(1), "ds");
  ASSERT_EQ(miss.kind, ResultCache::LookupKind::kLeader);
  cache.Publish(miss.flight, MakeResult(1.0));

  ResultCache::Lookup hit = cache.Acquire(Key(1), "ds");
  ASSERT_EQ(hit.kind, ResultCache::LookupKind::kHit);
  EXPECT_DOUBLE_EQ(hit.result->elapsed_seconds, 1.0);

  ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.size, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.coalesced, 0u);
}

TEST(ResultCacheTest, PartialResultsAreNeverStored) {
  ResultCache cache(8);
  for (core::Completion c :
       {core::Completion::kDeadlineExceeded, core::Completion::kCancelled,
        core::Completion::kBudgetExhausted}) {
    ResultCache::Lookup lead = cache.Acquire(Key(2), "ds");
    ASSERT_EQ(lead.kind, ResultCache::LookupKind::kLeader);
    cache.Publish(lead.flight, MakeResult(0.5, c));
    // The follower-visible result existed, but nothing was cached: the
    // next Acquire is a fresh miss, not a hit.
    EXPECT_EQ(cache.Acquire(Key(2), "ds").kind,
              ResultCache::LookupKind::kLeader);
    cache.Abandon(cache.Acquire(Key(2), "ds").flight);
  }
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(ResultCacheTest, FollowerReceivesLeadersResult) {
  ResultCache cache(8);
  ResultCache::Lookup lead = cache.Acquire(Key(3), "ds");
  ASSERT_EQ(lead.kind, ResultCache::LookupKind::kLeader);
  ResultCache::Lookup follow = cache.Acquire(Key(3), "ds");
  ASSERT_EQ(follow.kind, ResultCache::LookupKind::kFollower);

  std::thread waiter([&] {
    util::RunControl control;
    bool abandoned = true;
    ResultCache::ResultPtr got =
        cache.Wait(follow.flight, control, &abandoned);
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ(got->elapsed_seconds, 3.0);
    EXPECT_FALSE(abandoned);
  });
  cache.Publish(lead.flight, MakeResult(3.0));
  waiter.join();
  EXPECT_EQ(cache.stats().coalesced, 1u);
}

TEST(ResultCacheTest, AbandonWakesFollowerToRetryAsLeader) {
  ResultCache cache(8);
  ResultCache::Lookup lead = cache.Acquire(Key(4), "ds");
  ResultCache::Lookup follow = cache.Acquire(Key(4), "ds");
  ASSERT_EQ(follow.kind, ResultCache::LookupKind::kFollower);

  cache.Abandon(lead.flight);
  util::RunControl control;
  bool abandoned = false;
  EXPECT_EQ(cache.Wait(follow.flight, control, &abandoned), nullptr);
  EXPECT_TRUE(abandoned);
  // The retry finds no entry and no in-flight run: it leads now.
  EXPECT_EQ(cache.Acquire(Key(4), "ds").kind,
            ResultCache::LookupKind::kLeader);
  EXPECT_EQ(cache.stats().abandons, 1u);
}

TEST(ResultCacheTest, CancelledFollowerWalksAwayWithoutPoisoningTheFlight) {
  ResultCache cache(8);
  ResultCache::Lookup lead = cache.Acquire(Key(5), "ds");
  ResultCache::Lookup follow = cache.Acquire(Key(5), "ds");

  util::RunControl follower_control;
  follower_control.Cancel();
  bool abandoned = true;
  EXPECT_EQ(cache.Wait(follow.flight, follower_control, &abandoned), nullptr);
  EXPECT_FALSE(abandoned);  // the walk-away is the follower's own doing

  // The leader still publishes for everyone else; the entry is clean.
  cache.Publish(lead.flight, MakeResult(5.0));
  ResultCache::Lookup hit = cache.Acquire(Key(5), "ds");
  ASSERT_EQ(hit.kind, ResultCache::LookupKind::kHit);
  EXPECT_DOUBLE_EQ(hit.result->elapsed_seconds, 5.0);
}

TEST(ResultCacheTest, DeadlineBoundsFollowerWait) {
  ResultCache cache(8);
  ResultCache::Lookup lead = cache.Acquire(Key(6), "ds");
  ResultCache::Lookup follow = cache.Acquire(Key(6), "ds");
  util::RunControl control =
      util::RunControl::WithDeadline(std::chrono::milliseconds(20));
  bool abandoned = true;
  EXPECT_EQ(cache.Wait(follow.flight, control, &abandoned), nullptr);
  EXPECT_FALSE(abandoned);
  cache.Abandon(lead.flight);  // clean up the stranded flight
}

TEST(ResultCacheTest, LruEvictsBeyondCapacity) {
  ResultCache cache(2);
  for (uint64_t i = 0; i < 3; ++i) {
    ResultCache::Lookup lead = cache.Acquire(Key(10 + i), "ds");
    cache.Publish(lead.flight, MakeResult(static_cast<double>(i)));
  }
  // Key(10) was least recently used and fell out.
  EXPECT_EQ(cache.Acquire(Key(10), "ds").kind,
            ResultCache::LookupKind::kLeader);
  ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.evictions, 1u);
  cache.Abandon(cache.Acquire(Key(10), "ds").flight);
}

TEST(ResultCacheTest, HitsRefreshRecency) {
  ResultCache cache(2);
  for (uint64_t i = 0; i < 2; ++i) {
    cache.Publish(cache.Acquire(Key(20 + i), "ds").flight,
                  MakeResult(static_cast<double>(i)));
  }
  // Touch Key(20) so Key(21) is the victim of the next insert.
  ASSERT_EQ(cache.Acquire(Key(20), "ds").kind,
            ResultCache::LookupKind::kHit);
  cache.Publish(cache.Acquire(Key(22), "ds").flight, MakeResult(2.0));
  EXPECT_EQ(cache.Acquire(Key(20), "ds").kind,
            ResultCache::LookupKind::kHit);
  EXPECT_EQ(cache.Acquire(Key(21), "ds").kind,
            ResultCache::LookupKind::kLeader);
  cache.Abandon(cache.Acquire(Key(21), "ds").flight);
}

TEST(ResultCacheTest, InvalidateDatasetDropsOnlyItsEntries) {
  ResultCache cache(8);
  cache.Publish(cache.Acquire(Key(30), "adult").flight, MakeResult(1.0));
  cache.Publish(cache.Acquire(Key(31), "adult").flight, MakeResult(2.0));
  cache.Publish(cache.Acquire(Key(32), "breast").flight, MakeResult(3.0));

  EXPECT_EQ(cache.InvalidateDataset("adult"), 2u);
  EXPECT_EQ(cache.Acquire(Key(30), "adult").kind,
            ResultCache::LookupKind::kLeader);
  cache.Abandon(cache.Acquire(Key(30), "adult").flight);
  EXPECT_EQ(cache.Acquire(Key(32), "breast").kind,
            ResultCache::LookupKind::kHit);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(ResultCacheTest, ZeroCapacityStillCoalesces) {
  ResultCache cache(0);
  ResultCache::Lookup lead = cache.Acquire(Key(40), "ds");
  ASSERT_EQ(lead.kind, ResultCache::LookupKind::kLeader);
  ResultCache::Lookup follow = cache.Acquire(Key(40), "ds");
  ASSERT_EQ(follow.kind, ResultCache::LookupKind::kFollower);

  std::thread waiter([&] {
    util::RunControl control;
    bool abandoned = true;
    ResultCache::ResultPtr got =
        cache.Wait(follow.flight, control, &abandoned);
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ(got->elapsed_seconds, 40.0);
  });
  cache.Publish(lead.flight, MakeResult(40.0));
  waiter.join();

  // Followers were served, but nothing was stored.
  EXPECT_EQ(cache.Acquire(Key(40), "ds").kind,
            ResultCache::LookupKind::kLeader);
  cache.Abandon(cache.Acquire(Key(40), "ds").flight);
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(ResultCacheTest, ManyConcurrentAcquirersOneLeader) {
  ResultCache cache(8);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> leaders{0};
  std::atomic<int> served{0};
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      ResultCache::Lookup look = cache.Acquire(Key(50), "ds");
      if (look.kind == ResultCache::LookupKind::kLeader) {
        ++leaders;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        cache.Publish(look.flight, MakeResult(50.0));
        ++served;
      } else if (look.kind == ResultCache::LookupKind::kFollower) {
        util::RunControl control;
        bool abandoned = true;
        ResultCache::ResultPtr got =
            cache.Wait(look.flight, control, &abandoned);
        if (got != nullptr) ++served;
      } else {
        ++served;  // raced past the publish: a plain hit
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(served.load(), kThreads);
  ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.coalesced + s.hits, static_cast<uint64_t>(kThreads - 1));
}

}  // namespace
}  // namespace sdadcs::serve
