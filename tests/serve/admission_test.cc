// AdmissionController: slot accounting, bounded FIFO queueing, explicit
// RejectedBusy shedding, and deadline/cancel exits from the queue — all
// without ever blocking a caller that cannot eventually be served.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/admission.h"
#include "util/run_control.h"

namespace sdadcs::serve {
namespace {

using Outcome = AdmissionController::Outcome;

TEST(AdmissionTest, AdmitsUpToMaxConcurrent) {
  AdmissionController admission(2, 4);
  util::RunControl control;
  EXPECT_EQ(admission.Admit(control), Outcome::kAdmitted);
  EXPECT_EQ(admission.Admit(control), Outcome::kAdmitted);
  AdmissionController::Stats s = admission.stats();
  EXPECT_EQ(s.running, 2);
  EXPECT_EQ(s.admitted, 2u);
  admission.Release();
  admission.Release();
  EXPECT_EQ(admission.stats().running, 0);
}

TEST(AdmissionTest, ZeroQueueShedsImmediately) {
  AdmissionController admission(1, 0);
  util::RunControl control;
  ASSERT_EQ(admission.Admit(control), Outcome::kAdmitted);
  // The slot is taken and there is no queue: shed, don't block.
  EXPECT_EQ(admission.Admit(control), Outcome::kRejectedBusy);
  EXPECT_EQ(admission.stats().rejected_busy, 1u);
  admission.Release();
  // A freed slot admits again.
  EXPECT_EQ(admission.Admit(control), Outcome::kAdmitted);
  admission.Release();
}

TEST(AdmissionTest, QueueOverflowIsRejectedNotBlocked) {
  AdmissionController admission(1, 1);
  util::RunControl holder;
  ASSERT_EQ(admission.Admit(holder), Outcome::kAdmitted);

  std::atomic<bool> queued_done{false};
  std::thread queued([&] {
    util::RunControl control;
    double waited = 0.0;
    EXPECT_EQ(admission.Admit(control, &waited), Outcome::kAdmitted);
    EXPECT_GT(waited, 0.0);
    admission.Release();
    queued_done = true;
  });
  // Wait until the thread above actually occupies the queue slot.
  while (admission.stats().queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Queue full: the next caller is turned away immediately.
  util::RunControl control;
  EXPECT_EQ(admission.Admit(control), Outcome::kRejectedBusy);

  admission.Release();  // frees the slot; the queued thread takes it
  queued.join();
  EXPECT_TRUE(queued_done);
  AdmissionController::Stats s = admission.stats();
  EXPECT_EQ(s.rejected_busy, 1u);
  EXPECT_EQ(s.admitted_after_wait, 1u);
  EXPECT_GT(s.total_queue_wait_seconds, 0.0);
  EXPECT_EQ(s.running, 0);
  EXPECT_EQ(s.queued, 0);
}

TEST(AdmissionTest, DeadlineExpiresInQueue) {
  AdmissionController admission(1, 2);
  util::RunControl holder;
  ASSERT_EQ(admission.Admit(holder), Outcome::kAdmitted);

  util::RunControl control =
      util::RunControl::WithDeadline(std::chrono::milliseconds(30));
  EXPECT_EQ(admission.Admit(control), Outcome::kExpiredInQueue);
  EXPECT_EQ(admission.stats().expired_in_queue, 1u);
  EXPECT_EQ(admission.stats().queued, 0);
  admission.Release();
}

TEST(AdmissionTest, CancelExitsTheQueue) {
  AdmissionController admission(1, 2);
  util::RunControl holder;
  ASSERT_EQ(admission.Admit(holder), Outcome::kAdmitted);

  util::RunControl control;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    control.Cancel();
  });
  EXPECT_EQ(admission.Admit(control), Outcome::kCancelledInQueue);
  canceller.join();
  admission.Release();
}

TEST(AdmissionTest, FifoAmongWaiters) {
  AdmissionController admission(1, 4);
  util::RunControl holder;
  ASSERT_EQ(admission.Admit(holder), Outcome::kAdmitted);

  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&, i] {
      util::RunControl control;
      EXPECT_EQ(admission.Admit(control), Outcome::kAdmitted);
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(i);
      }
      admission.Release();
    });
    // Serialize queue entry so ticket order matches i.
    while (admission.stats().queued < i + 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  admission.Release();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// A burst far over capacity must resolve every caller — admitted or
// shed — and never deadlock. (Run under a sanitizer this also vets the
// locking.)
TEST(AdmissionTest, OverCapacityBurstAlwaysResolves) {
  AdmissionController admission(2, 2);
  constexpr int kCallers = 16;
  std::atomic<int> admitted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&] {
      util::RunControl control;
      Outcome outcome = admission.Admit(control);
      if (outcome == Outcome::kAdmitted) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        admission.Release();
        ++admitted;
      } else {
        EXPECT_EQ(outcome, Outcome::kRejectedBusy);
        ++rejected;
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(admitted + rejected, kCallers);
  EXPECT_GE(admitted.load(), 2);  // at least the first slot holders
  AdmissionController::Stats s = admission.stats();
  EXPECT_EQ(s.running, 0);
  EXPECT_EQ(s.queued, 0);
  EXPECT_EQ(s.admitted, static_cast<uint64_t>(admitted.load()));
  EXPECT_EQ(s.rejected_busy, static_cast<uint64_t>(rejected.load()));
}

// WaitIdle is the drain hook of the front ends: it must block while any
// slot or queue position is held and release as soon as both empty.
TEST(AdmissionTest, WaitIdleBlocksUntilReleased) {
  AdmissionController admission(1, 4);
  util::RunControl control;
  ASSERT_EQ(admission.Admit(control), Outcome::kAdmitted);
  EXPECT_FALSE(admission.WaitIdle(/*timeout_ms=*/20));

  std::thread releaser([&admission] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    admission.Release();
  });
  EXPECT_TRUE(admission.WaitIdle(/*timeout_ms=*/2000));
  releaser.join();
  EXPECT_TRUE(admission.WaitIdle(/*timeout_ms=*/1));  // already idle
}

TEST(AdmissionTest, WaitIdleSeesQueuedWaiters) {
  AdmissionController admission(1, 4);
  util::RunControl control;
  ASSERT_EQ(admission.Admit(control), Outcome::kAdmitted);
  std::thread waiter([&admission] {
    util::RunControl inner;
    EXPECT_EQ(admission.Admit(inner), Outcome::kAdmitted);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    admission.Release();
  });
  while (admission.stats().queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Slot held AND a waiter queued: not idle yet.
  EXPECT_FALSE(admission.WaitIdle(/*timeout_ms=*/10));
  admission.Release();
  EXPECT_TRUE(admission.WaitIdle(/*timeout_ms=*/2000));
  waiter.join();
}

TEST(TenantQuotaTest, CapsInFlightPerTenant) {
  TenantQuota quota(2);
  EXPECT_TRUE(quota.TryAcquire("a"));
  EXPECT_TRUE(quota.TryAcquire("a"));
  EXPECT_FALSE(quota.TryAcquire("a"));  // a's quota is spent...
  EXPECT_TRUE(quota.TryAcquire("b"));   // ...but b's is untouched
  quota.Release("a");
  EXPECT_TRUE(quota.TryAcquire("a"));

  TenantQuota::Stats s = quota.stats();
  EXPECT_EQ(s.max_inflight, 2);
  EXPECT_EQ(s.tenants_inflight, 2);  // a and b both hold something
  EXPECT_EQ(s.acquired, 4u);
  EXPECT_EQ(s.rejected, 1u);
}

TEST(TenantQuotaTest, ZeroMeansUnlimited) {
  TenantQuota quota(0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(quota.TryAcquire("t"));
  EXPECT_EQ(quota.stats().rejected, 0u);
}

TEST(TenantQuotaTest, ReleaseForgetsDrainedTenants) {
  TenantQuota quota(1);
  EXPECT_TRUE(quota.TryAcquire("t"));
  quota.Release("t");
  EXPECT_EQ(quota.stats().tenants_inflight, 0);
}

}  // namespace
}  // namespace sdadcs::serve
