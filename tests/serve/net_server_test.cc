// NetServer driven end to end through real TCP connections: the warm
// fast path, pipelined cancellation, queue exits observed over the
// wire, per-tenant quotas, protocol errors, and graceful drain.

#include "serve/net_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/net_client.h"
#include "serve/server.h"

namespace sdadcs::serve {
namespace {

JsonValue MustParse(const std::string& line) {
  auto parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *parsed : JsonValue();
}

JsonValue Call(NetClient& client, const std::string& line) {
  auto response = client.Call(line);
  EXPECT_TRUE(response.ok()) << line;
  return response.ok() ? *response : JsonValue();
}

/// A serve::Server + NetServer pair on an ephemeral port with one
/// dataset loaded, drained on destruction.
struct TestStack {
  explicit TestStack(ServerOptions server_options = {},
                     NetServerOptions net_options = {})
      : server(server_options), net(server, net_options) {
    EXPECT_TRUE(net.Start().ok());
    NetClient loader = Connect();
    JsonValue loaded = Call(
        loader, R"({"op":"load","name":"d","spec":"synth:scaling:2000"})");
    EXPECT_TRUE(loaded.GetBool("ok", false));
  }
  ~TestStack() { net.Drain(); }

  NetClient Connect() {
    auto client = NetClient::Connect("127.0.0.1", net.port());
    EXPECT_TRUE(client.ok());
    return std::move(*client);
  }

  Server server;
  NetServer net;
};

std::string Mine(const std::string& id,
                 const std::string& config = R"({"depth":1})",
                 const std::string& extra = "") {
  return R"({"op":"mine","dataset":"d","group":"batch","id":")" + id +
         R"(","config":)" + config + extra + "}";
}

TEST(NetServerTest, WarmHitAnsweredOnReaderThread) {
  TestStack stack;
  NetClient client = stack.Connect();

  JsonValue cold = Call(client, Mine("1"));
  EXPECT_TRUE(cold.GetBool("ok", false));
  EXPECT_EQ(cold.GetString("verdict"), "ok");
  EXPECT_EQ(cold.GetString("cache"), "miss");
  EXPECT_EQ(cold.GetString("id"), "1");

  JsonValue warm = Call(client, Mine("2"));
  EXPECT_EQ(warm.GetString("cache"), "hit");
  EXPECT_EQ(warm.GetString("id"), "2");

  NetServer::Stats stats = stack.net.stats();
  EXPECT_EQ(stats.mines_dispatched, 1u);  // only the cold one queued
  EXPECT_EQ(stats.warm_fast_path, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(NetServerTest, ProtocolErrorsKeepTheConnectionAlive) {
  TestStack stack;
  NetClient client = stack.Connect();

  JsonValue garbage = Call(client, "this is not json");
  EXPECT_FALSE(garbage.GetBool("ok", true));
  const JsonValue* error = garbage.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetString("code"), "parse_error");

  JsonValue unknown = Call(client, R"({"op":"transmogrify"})");
  EXPECT_EQ(unknown.Find("error")->GetString("code"), "unknown_op");
  EXPECT_EQ(unknown.Find("error")->GetString("field"), "op");

  JsonValue version = Call(client, R"({"v":99,"op":"ping"})");
  EXPECT_EQ(version.Find("error")->GetString("code"),
            "unsupported_version");

  JsonValue invalid = Call(client, R"({"op":"mine","dataset":"d"})");
  EXPECT_EQ(invalid.Find("error")->GetString("code"), "invalid_argument");
  EXPECT_EQ(invalid.Find("error")->GetString("field"), "group");

  // Burst is a stdin-transport knob; the socket rejects it by name.
  JsonValue burst =
      Call(client, Mine("b", R"({"depth":1})", R"(,"burst":4)"));
  EXPECT_EQ(burst.Find("error")->GetString("field"), "burst");

  // After five rejected frames, the connection still serves.
  JsonValue ping = Call(client, R"({"op":"ping"})");
  EXPECT_TRUE(ping.GetBool("ok", false));
  EXPECT_EQ(static_cast<int64_t>(ping.GetNumber("v", 0)), 1);
}

// A pipelined {"op":"cancel"} reaches a mine waiting in the admission
// queue: the reader thread registers the mine's RunControl before
// dispatch, so the cancel (processed next, in frame order) always finds
// it.
TEST(NetServerTest, PipelinedCancelReachesQueuedMine) {
  ServerOptions options;
  options.max_concurrent_runs = 1;  // "a" occupies the only slot
  TestStack stack(options);
  NetClient client = stack.Connect();

  // depth 2 holds the slot for long enough that "b" is still queued
  // when its cancel lands (frames are handled in order, microseconds
  // apart).
  ASSERT_TRUE(client.Send(Mine("a", R"({"depth":2})")).ok());
  ASSERT_TRUE(client.Send(Mine("b")).ok());
  ASSERT_TRUE(client.Send(R"({"op":"cancel","target":"b"})").ok());

  // Completion order: cancel ack (inline), then b (cancelled in queue),
  // then a — which we also cancel so the test doesn't wait out depth 2.
  JsonValue cancel_ack = MustParse(*client.ReadLine());
  EXPECT_EQ(cancel_ack.GetString("op"), "cancel");
  EXPECT_TRUE(cancel_ack.GetBool("found", false));

  JsonValue b = MustParse(*client.ReadLine());
  EXPECT_EQ(b.GetString("id"), "b");
  EXPECT_EQ(b.GetString("verdict"), "cancelled");

  ASSERT_TRUE(client.Send(R"({"op":"cancel","target":"a"})").ok());
  JsonValue cancel_a = MustParse(*client.ReadLine());
  EXPECT_EQ(cancel_a.GetString("op"), "cancel");
  JsonValue a = MustParse(*client.ReadLine());
  EXPECT_EQ(a.GetString("id"), "a");
  // "a" may have finished its run before the cancel: either a clean
  // result or a cancellation, never silence.
  EXPECT_TRUE(a.GetString("verdict") == "ok" ||
              a.GetString("verdict") == "cancelled")
      << a.GetString("verdict");

  JsonValue missing = Call(client, R"({"op":"cancel","target":"zz"})");
  EXPECT_FALSE(missing.GetBool("found", true));
}

// A queued mine whose own deadline passes while it waits exits with
// verdict "expired_in_queue" — observed entirely over the wire.
TEST(NetServerTest, QueuedDeadlineExpiryObservedOverSocket) {
  ServerOptions options;
  options.max_concurrent_runs = 1;
  TestStack stack(options);
  NetClient client = stack.Connect();

  ASSERT_TRUE(client.Send(Mine("a", R"({"depth":2})")).ok());
  ASSERT_TRUE(client.Send(Mine("b", R"({"depth":1})", R"(,"deadline_ms":25)")).ok());

  JsonValue b = MustParse(*client.ReadLine());
  EXPECT_EQ(b.GetString("id"), "b");
  EXPECT_EQ(b.GetString("verdict"), "expired_in_queue");

  ASSERT_TRUE(client.Send(R"({"op":"cancel","target":"a"})").ok());
  (void)client.ReadLine();  // cancel ack
  JsonValue a = MustParse(*client.ReadLine());
  EXPECT_EQ(a.GetString("id"), "a");
}

TEST(NetServerTest, TenantQuotaShedsSecondInFlightMine) {
  ServerOptions options;
  options.max_concurrent_runs = 1;
  NetServerOptions net_options;
  net_options.tenant_max_inflight = 1;
  TestStack stack(options, net_options);
  NetClient client = stack.Connect();

  ASSERT_TRUE(client.Send(
      Mine("a", R"({"depth":2})", R"(,"tenant":"team-a")")).ok());
  // Wait until "a" actually holds its quota (the executor acquires it
  // just before Server::Mine takes the admission slot).
  while (stack.net.stats().quota.acquired < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(client.Send(Mine("b", R"({"depth":1})", R"(,"tenant":"team-a")")).ok());
  JsonValue b = MustParse(*client.ReadLine());
  EXPECT_EQ(b.GetString("id"), "b");
  EXPECT_EQ(b.GetString("verdict"), "rejected_quota");

  // A different tenant is not throttled by team-a's usage. "c" waits on
  // the admission slot "a" holds, so responses ("a", "c", the cancel
  // ack) arrive in completion order — match them by id.
  ASSERT_TRUE(client.Send(Mine("c", R"({"depth":1})", R"(,"tenant":"team-b")")).ok());
  ASSERT_TRUE(client.Send(R"({"op":"cancel","target":"a"})").ok());
  bool saw_c = false;
  for (int i = 0; i < 3; ++i) {
    JsonValue response = MustParse(*client.ReadLine());
    if (response.GetString("id") == "c") {
      EXPECT_NE(response.GetString("verdict"), "rejected_quota");
      saw_c = true;
    }
  }
  EXPECT_TRUE(saw_c);
  EXPECT_EQ(stack.net.stats().quota.rejected, 1u);
}

// Graceful drain: every frame the server received is answered — queued
// mines run to completion — and only then do the connections close.
TEST(NetServerTest, DrainAnswersEveryReceivedFrame) {
  TestStack stack;
  NetClient client = stack.Connect();

  constexpr int kMines = 6;
  for (int i = 0; i < kMines; ++i) {
    // Distinct top_k per mine: all cold, all real executor work.
    ASSERT_TRUE(client
                    .Send(Mine(std::to_string(i),
                               R"({"depth":1,"top":)" +
                                   std::to_string(50 + i) + "}"))
                    .ok());
  }
  // Drain while they are queued/running: received frames must all be
  // answered first.
  while (stack.net.stats().frames < kMines + 1) {  // +1 for the load
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stack.net.Drain();

  int answered = 0;
  for (int i = 0; i < kMines; ++i) {
    auto line = client.ReadLine();
    ASSERT_TRUE(line.ok()) << "response " << i << " lost in drain";
    JsonValue response = MustParse(*line);
    EXPECT_EQ(response.GetString("verdict"), "ok");
    ++answered;
  }
  EXPECT_EQ(answered, kMines);
  // After the answers, the server closes the connection: clean EOF.
  EXPECT_FALSE(client.ReadLine().ok());
}

TEST(NetServerTest, StatsOpReportsNetCounters) {
  TestStack stack;
  NetClient client = stack.Connect();
  (void)Call(client, Mine("1"));
  JsonValue stats = Call(client, R"({"op":"stats"})");
  ASSERT_TRUE(stats.GetBool("ok", false));
  const JsonValue* net = stats.Find("net");
  ASSERT_NE(net, nullptr);
  EXPECT_GE(net->GetNumber("connections_accepted", 0), 2.0);  // loader + us
  EXPECT_GE(net->GetNumber("mines_dispatched", 0), 1.0);
  // The server-side sections are the same ones sdadcs_serve renders.
  const JsonValue* registry = stats.Find("registry");
  ASSERT_NE(registry, nullptr);
  EXPECT_NE(stats.Find("admission"), nullptr);
  // Chunk-residency keys are always present; with the default resident
  // backend they read zero (nothing pages).
  EXPECT_EQ(registry->GetNumber("resident_chunk_bytes", -1), 0.0);
  EXPECT_EQ(registry->GetNumber("chunk_loads", -1), 0.0);
  EXPECT_EQ(registry->GetNumber("chunk_evictions", -1), 0.0);
}

TEST(NetServerTest, ConnectionLimitAnsweredWithBusy) {
  NetServerOptions net_options;
  net_options.max_connections = 1;
  TestStack stack({}, net_options);
  // The loader connection just closed; it is reaped on the next accept,
  // so retry until this connection owns the single slot.
  NetClient first = stack.Connect();
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto response = first.Call(R"({"op":"ping"})");
    if (response.ok() && response->GetBool("ok", false)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    first = stack.Connect();
  }

  NetClient second = stack.Connect();
  auto line = second.ReadLine();
  ASSERT_TRUE(line.ok());
  JsonValue busy = MustParse(*line);
  EXPECT_EQ(busy.Find("error")->GetString("code"), "busy");
  EXPECT_FALSE(second.ReadLine().ok());  // then the server closes it
}

}  // namespace
}  // namespace sdadcs::serve
