// The hand-rolled JSON layer of the ND-JSON serving protocol: parser,
// typed accessors, escaping and the object writer.

#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "serve/ndjson.h"

namespace sdadcs::serve {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_EQ(JsonValue::Parse("null")->kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(JsonValue::Parse("true")->AsBool());
  EXPECT_FALSE(JsonValue::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.5")->AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-17")->AsNumber(), -17.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3")->AsNumber(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, ObjectAndTypedAccessors) {
  auto v = JsonValue::Parse(
      R"({"op":"mine","rows":4096,"warm":true,"alpha":0.05,)"
      R"("groups":["a","b"],"nested":{"x":1}})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->IsObject());
  EXPECT_EQ(v->GetString("op"), "mine");
  EXPECT_EQ(v->GetInt("rows", -1), 4096);
  EXPECT_TRUE(v->GetBool("warm", false));
  EXPECT_DOUBLE_EQ(v->GetNumber("alpha", 0.0), 0.05);
  EXPECT_EQ(v->GetStringArray("groups"),
            (std::vector<std::string>{"a", "b"}));
  ASSERT_NE(v->Find("nested"), nullptr);
  EXPECT_EQ(v->Find("nested")->GetInt("x", -1), 1);
  // Fallbacks: absent key and wrong type both fall back.
  EXPECT_EQ(v->GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(v->GetInt("op", 42), 42);
  EXPECT_TRUE(v->GetStringArray("rows").empty());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = JsonValue::Parse(R"("a\"b\\c\/d\n\tAé")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("'single'").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad \\x escape\"").ok());
  // One document per line: trailing garbage is an error, not ignored.
  EXPECT_FALSE(JsonValue::Parse("{} {}").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());
  // Lone surrogate halves are rejected.
  EXPECT_FALSE(JsonValue::Parse(R"("\ud800")").ok());
}

TEST(JsonParseTest, DepthCapStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += '[';
  for (int i = 0; i < 64; ++i) deep += ']';
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  // Modest nesting is fine.
  EXPECT_TRUE(JsonValue::Parse("[[[[[[[[1]]]]]]]]").ok());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto v = JsonValue::Parse("  { \"a\" : [ 1 , 2 ] }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->AsArray().size(), 2u);
}

TEST(JsonEscapeTest, EscapesControlQuoteBackslash) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonNumberTest, IntegralAndFractionalRendering) {
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(JsonNumber(-42.0), "-42");
  EXPECT_EQ(JsonNumber(0.125), "0.125");
  // JSON has no Inf/NaN.
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(JsonObjectWriterTest, RendersFieldsInInsertionOrder) {
  JsonObjectWriter nested;
  nested.Add("x", 1);
  JsonObjectWriter w;
  w.Add("op", "load")
      .Add("rows", static_cast<int64_t>(4096))
      .Add("warm", true)
      .Add("alpha", 0.5)
      .AddRaw("stats", nested.Str());
  EXPECT_EQ(w.Str(),
            R"({"op":"load","rows":4096,"warm":true,"alpha":0.5,)"
            R"("stats":{"x":1}})");
}

TEST(JsonObjectWriterTest, EscapesKeysAndValues) {
  JsonObjectWriter w;
  w.Add("say \"hi\"", "a\nb");
  EXPECT_EQ(w.Str(), R"({"say \"hi\"":"a\nb"})");
}

TEST(JsonRoundTripTest, WriterOutputParsesBack) {
  JsonObjectWriter w;
  w.Add("name", "scaling").Add("rows", 20000).Add("ok", true);
  auto v = JsonValue::Parse(w.Str());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetString("name"), "scaling");
  EXPECT_EQ(v->GetInt("rows", -1), 20000);
  EXPECT_TRUE(v->GetBool("ok", false));
}

}  // namespace
}  // namespace sdadcs::serve
