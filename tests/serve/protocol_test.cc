// The versioned wire protocol: request parsing, the error taxonomy, and
// the rendering helpers every front end shares.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "core/interest.h"
#include "core/split_kernel.h"

namespace sdadcs::serve {
namespace {

JsonValue Parse(const std::string& text) {
  auto parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return *parsed;
}

TEST(WireErrorTest, LiftsFieldFromColonConvention) {
  WireError error = WireError::FromStatus(
      util::Status::InvalidArgument("group_attr: no such attribute 'x'"));
  EXPECT_EQ(error.code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(error.field, "group_attr");
  EXPECT_EQ(error.message, "group_attr: no such attribute 'x'");
}

TEST(WireErrorTest, LiftsFieldFromMustBeConvention) {
  WireError error = WireError::FromStatus(
      util::Status::InvalidArgument("max_depth must be >= 1"));
  EXPECT_EQ(error.field, "max_depth");
}

TEST(WireErrorTest, NoFieldWhenMessageHasNoConvention) {
  WireError error = WireError::FromStatus(
      util::Status::InvalidArgument("something went sideways"));
  EXPECT_EQ(error.field, "");
}

TEST(WireErrorTest, FieldHintWinsOverExtraction) {
  WireError error = WireError::FromStatus(
      util::Status::InvalidArgument("group_attr: nope"), "engine");
  EXPECT_EQ(error.field, "engine");
}

TEST(WireErrorTest, StatusCodeMapping) {
  EXPECT_EQ(WireError::FromStatus(util::Status::NotFound("x")).code,
            ErrorCode::kNotFound);
  EXPECT_EQ(WireError::FromStatus(util::Status::Internal("x")).code,
            ErrorCode::kInternal);
  EXPECT_EQ(
      WireError::FromStatus(util::Status::FailedPrecondition("x")).code,
      ErrorCode::kInvalidArgument);
}

TEST(WireErrorTest, JsonAndTextRenderings) {
  WireError error{ErrorCode::kInvalidArgument, "engine", "unknown engine"};
  EXPECT_EQ(error.ToJson(),
            "{\"code\":\"invalid_argument\",\"field\":\"engine\","
            "\"message\":\"unknown engine\"}");
  EXPECT_EQ(error.ToText(), "invalid_argument[engine]: unknown engine");

  WireError fieldless{ErrorCode::kParseError, "", "bad json"};
  EXPECT_EQ(fieldless.ToJson(),
            "{\"code\":\"parse_error\",\"message\":\"bad json\"}");
  EXPECT_EQ(fieldless.ToText(), "parse_error: bad json");
}

TEST(ProtocolVersionTest, UnpinnedAndMatchingPass) {
  EXPECT_FALSE(CheckProtocolVersion(Parse("{\"op\":\"ping\"}")).has_value());
  EXPECT_FALSE(
      CheckProtocolVersion(Parse("{\"v\":1,\"op\":\"ping\"}")).has_value());
}

TEST(ProtocolVersionTest, MismatchRejected) {
  auto error = CheckProtocolVersion(Parse("{\"v\":2,\"op\":\"ping\"}"));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::kUnsupportedVersion);
  EXPECT_EQ(error->field, "v");

  // A non-numeric pin is a mismatch, not silently current-version.
  EXPECT_TRUE(CheckProtocolVersion(Parse("{\"v\":\"1\"}")).has_value());
}

TEST(ParseMineCallTest, MinimalRequest) {
  MineFrame frame;
  auto error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"class\"}"),
      &frame);
  EXPECT_FALSE(error.has_value());
  EXPECT_EQ(frame.call.dataset, "d");
  EXPECT_EQ(frame.call.group_attr, "class");
  EXPECT_EQ(frame.burst, 1);
  EXPECT_TRUE(frame.call.use_cache);
  EXPECT_FALSE(frame.emit_patterns);
}

TEST(ParseMineCallTest, MissingRequiredFieldsNameTheField) {
  MineFrame frame;
  auto error = ParseMineCall(Parse("{\"op\":\"mine\"}"), &frame);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(error->field, "dataset");

  error = ParseMineCall(Parse("{\"op\":\"mine\",\"dataset\":\"d\"}"), &frame);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "group");
}

TEST(ParseMineCallTest, FullConfigRoundTrips) {
  MineFrame frame;
  auto error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"g\","
            "\"groups\":[\"a\",\"b\"],\"engine\":\"serial\","
            "\"deadline_ms\":250,\"node_budget\":1000,\"cache\":false,"
            "\"emit\":\"patterns\",\"tenant\":\"team-a\",\"id\":\"42\","
            "\"config\":{\"depth\":3,\"delta\":0.2,\"alpha\":0.01,"
            "\"top\":7,\"measure\":\"pr\",\"kernel\":\"scalar\"}}"),
      &frame);
  ASSERT_FALSE(error.has_value()) << error->ToText();
  EXPECT_EQ(frame.call.group_values,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(frame.call.engine, core::EngineKind::kSerial);
  EXPECT_EQ(frame.deadline_ms, 250);
  EXPECT_EQ(frame.node_budget, 1000u);
  EXPECT_FALSE(frame.call.use_cache);
  EXPECT_TRUE(frame.emit_patterns);
  EXPECT_EQ(frame.tenant, "team-a");
  EXPECT_EQ(frame.id, "42");
  EXPECT_EQ(frame.call.config.max_depth, 3);
  EXPECT_EQ(frame.call.config.top_k, 7);
  EXPECT_EQ(frame.call.config.measure, core::MeasureKind::kPurityRatio);
  EXPECT_EQ(frame.call.config.kernel, core::KernelKind::kScalar);
}

TEST(ParseMineCallTest, ShardedEngineSpecCarriesCount) {
  MineFrame frame;
  auto error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"g\","
            "\"engine\":\"sharded:4\"}"),
      &frame);
  ASSERT_FALSE(error.has_value()) << error->ToText();
  EXPECT_EQ(frame.call.engine, core::EngineKind::kSharded);
  EXPECT_EQ(frame.call.shards, 4u);

  // Bare name: the count defers to the server's deployment default.
  error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"g\","
            "\"engine\":\"sharded\"}"),
      &frame);
  ASSERT_FALSE(error.has_value());
  EXPECT_EQ(frame.call.engine, core::EngineKind::kSharded);
  EXPECT_EQ(frame.call.shards, 0u);

  error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"g\","
            "\"engine\":\"sharded:0\"}"),
      &frame);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "engine");
}

TEST(RenderEnginesTest, ListsRegistryAndAliases) {
  JsonObjectWriter w;
  RenderEngines(&w);
  std::string body = w.Str();
  EXPECT_NE(body.find("\"engines\":["), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"serial\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"sharded\""), std::string::npos);
  EXPECT_NE(body.find("\"aliases\":[\"auto\",\"sharded:<n>\"]"),
            std::string::npos);
  // The body itself must be splice-safe JSON.
  auto parsed = JsonValue::Parse(body);
  ASSERT_TRUE(parsed.ok());
  const auto* engines = parsed->Find("engines");
  ASSERT_NE(engines, nullptr);
  EXPECT_TRUE(engines->IsArray());
  EXPECT_GE(engines->AsArray().size(), 10u);
}

TEST(ParseMineCallTest, UnknownMeasureKernelEngineAreErrors) {
  MineFrame frame;
  auto error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"g\","
            "\"config\":{\"measure\":\"bogus\"}}"),
      &frame);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "config.measure");

  error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"g\","
            "\"config\":{\"kernel\":\"sse9\"}}"),
      &frame);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "config.kernel");

  error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"g\","
            "\"engine\":\"warp\"}"),
      &frame);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "engine");
}

TEST(ParseMineCallTest, BurstRules) {
  MineFrame frame;
  auto error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"g\","
            "\"burst\":257}"),
      &frame);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "burst");

  error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"g\","
            "\"burst\":4,\"anytime\":true}"),
      &frame);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->field, "anytime");

  // Sub-1 values clamp to a single request rather than erroring.
  error = ParseMineCall(
      Parse("{\"op\":\"mine\",\"dataset\":\"d\",\"group\":\"g\","
            "\"burst\":0}"),
      &frame);
  EXPECT_FALSE(error.has_value());
  EXPECT_EQ(frame.burst, 1);
}

TEST(EnumParsersTest, MeasureAndKernelNames) {
  EXPECT_EQ(*MeasureFromString("diff"), core::MeasureKind::kSupportDiff);
  EXPECT_EQ(*MeasureFromString("entropy"),
            core::MeasureKind::kEntropyPurity);
  EXPECT_FALSE(MeasureFromString("").ok());
  EXPECT_EQ(*KernelFromString("avx2"), core::KernelKind::kAvx2);
  EXPECT_FALSE(KernelFromString("neon").ok());
}

TEST(EnvelopeTest, VersionLeadsEveryResponse) {
  EXPECT_EQ(ResponseEnvelope(true, "ping").Str(),
            "{\"v\":1,\"ok\":true,\"op\":\"ping\"}");
  EXPECT_EQ(ResponseEnvelope(true, "mine", "7").Str(),
            "{\"v\":1,\"ok\":true,\"op\":\"mine\",\"id\":\"7\"}");
  WireError error{ErrorCode::kUnknownOp, "op", "unknown op 'x'"};
  EXPECT_EQ(ErrorResponse("x", error).Str(),
            "{\"v\":1,\"ok\":false,\"op\":\"x\",\"error\":{\"code\":"
            "\"unknown_op\",\"field\":\"op\",\"message\":"
            "\"unknown op 'x'\"}}");
}

TEST(RenderMineOutcomeTest, ErrorVerdictCarriesStructuredError) {
  MineOutcome outcome;
  outcome.verdict = Verdict::kError;
  outcome.status = util::Status::NotFound("dataset 'd' is not loaded");
  JsonObjectWriter w;
  RenderMineOutcome(outcome, "", &w);
  std::string rendered = w.Str();
  EXPECT_NE(rendered.find("\"verdict\":\"error\""), std::string::npos);
  EXPECT_NE(rendered.find("\"error\":{\"code\":\"not_found\""),
            std::string::npos);
}

}  // namespace
}  // namespace sdadcs::serve
