// DatasetRegistry: spec loading, handle replacement with generation
// bumps, LRU eviction against a byte budget, and the eviction listener
// the serving layer hangs cache invalidation on.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serve/dataset_registry.h"

namespace sdadcs::serve {
namespace {

TEST(LoadDatasetFromSpecTest, SynthScalingHonoursRowCount) {
  auto db = LoadDatasetFromSpec("synth:scaling:1000");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_rows(), 1000u);
  EXPECT_GT(db->num_attributes(), 100u);  // 120 features + group attr
}

TEST(LoadDatasetFromSpecTest, SynthUciLikeByName) {
  auto db = LoadDatasetFromSpec("synth:breast");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_rows(), 699u);  // 458 benign + 241 malignant
}

TEST(LoadDatasetFromSpecTest, UnknownSynthNameIsInvalidArgument) {
  auto db = LoadDatasetFromSpec("synth:nosuch");
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(LoadDatasetFromSpecTest, MissingCsvPathFails) {
  EXPECT_FALSE(LoadDatasetFromSpec("/nonexistent/file.csv").ok());
}

TEST(DatasetRegistryTest, LoadThenGetSharesOneSealedDataset) {
  DatasetRegistry registry;
  auto loaded = registry.Load("b", "synth:breast");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->name, "b");
  EXPECT_EQ((*loaded)->spec, "synth:breast");
  EXPECT_GT((*loaded)->memory_bytes, 0u);
  EXPECT_NE((*loaded)->fingerprint, 0u);

  auto got = registry.Get("b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), loaded->get());  // same resident object

  auto missing = registry.Get("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);

  DatasetRegistry::Stats s = registry.stats();
  EXPECT_EQ(s.resident, 1u);
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.resident_bytes, (*loaded)->memory_bytes);
}

TEST(DatasetRegistryTest, EmptyNameRejected) {
  DatasetRegistry registry;
  EXPECT_FALSE(registry.Load("", "synth:breast").ok());
}

TEST(DatasetRegistryTest, ReloadReplacesAndBumpsGeneration) {
  DatasetRegistry registry;
  std::vector<std::string> evicted_names;
  registry.set_eviction_listener(
      [&](const std::shared_ptr<const ServedDataset>& ds) {
        evicted_names.push_back(ds->name);
      });

  auto v1 = registry.Load("d", "synth:breast");
  ASSERT_TRUE(v1.ok());
  auto v2 = registry.Load("d", "synth:transfusion");
  ASSERT_TRUE(v2.ok());

  // The replaced generation fired the listener; the new one is resident.
  EXPECT_EQ(evicted_names, std::vector<std::string>{"d"});
  EXPECT_GT((*v2)->generation, (*v1)->generation);
  EXPECT_NE((*v2)->fingerprint, (*v1)->fingerprint);

  DatasetRegistry::Stats s = registry.stats();
  EXPECT_EQ(s.resident, 1u);
  EXPECT_EQ(s.loads, 2u);
  EXPECT_EQ(s.replacements, 1u);
  EXPECT_EQ(s.evictions, 0u);  // replacement is not an eviction

  // The old handle stays alive for whoever still holds it.
  EXPECT_EQ((*v1)->spec, "synth:breast");
  EXPECT_GT((*v1)->db.num_rows(), 0u);
}

TEST(DatasetRegistryTest, ExplicitEvictFiresListener) {
  DatasetRegistry registry;
  int evictions = 0;
  registry.set_eviction_listener(
      [&](const std::shared_ptr<const ServedDataset>&) { ++evictions; });
  ASSERT_TRUE(registry.Load("d", "synth:breast").ok());
  EXPECT_TRUE(registry.Evict("d"));
  EXPECT_FALSE(registry.Evict("d"));  // already gone
  EXPECT_EQ(evictions, 1);
  EXPECT_FALSE(registry.Get("d").ok());
}

TEST(DatasetRegistryTest, BudgetEvictsLeastRecentlyUsedFirst) {
  // Size the budget from a real dataset so the test tracks MemoryUsage
  // drift: room for about two transfusion-sized datasets, not three.
  auto probe = DatasetRegistry().Load("probe", "synth:transfusion");
  ASSERT_TRUE(probe.ok());
  const size_t one = (*probe)->memory_bytes;

  DatasetRegistry registry(2 * one + one / 2);
  std::vector<std::string> evicted;
  registry.set_eviction_listener(
      [&](const std::shared_ptr<const ServedDataset>& ds) {
        evicted.push_back(ds->name);
      });

  ASSERT_TRUE(registry.Load("a", "synth:transfusion").ok());
  ASSERT_TRUE(registry.Load("b", "synth:transfusion").ok());
  // Touch "a" so "b" is the LRU victim when "c" overflows the budget.
  ASSERT_TRUE(registry.Get("a").ok());
  ASSERT_TRUE(registry.Load("c", "synth:transfusion").ok());

  EXPECT_EQ(evicted, std::vector<std::string>{"b"});
  EXPECT_EQ(registry.ResidentNames(), (std::vector<std::string>{"c", "a"}));
  DatasetRegistry::Stats s = registry.stats();
  EXPECT_EQ(s.resident, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.resident_bytes, s.budget_bytes);
}

TEST(DatasetRegistryTest, OversizedDatasetStaysResidentAlone) {
  // A single dataset larger than the whole budget is kept (serving
  // nothing would be strictly worse); the overage shows in stats.
  DatasetRegistry registry(1);  // 1 byte
  ASSERT_TRUE(registry.Load("big", "synth:breast").ok());
  DatasetRegistry::Stats s = registry.stats();
  EXPECT_EQ(s.resident, 1u);
  EXPECT_GT(s.resident_bytes, s.budget_bytes);
  EXPECT_TRUE(registry.Get("big").ok());

  // Loading a second dataset now evicts the LRU one to chase the budget.
  ASSERT_TRUE(registry.Load("big2", "synth:transfusion").ok());
  EXPECT_EQ(registry.ResidentNames(), std::vector<std::string>{"big2"});
}

TEST(DatasetRegistryTest, ReplaceStartsAFreshArtifactBundle) {
  DatasetRegistry registry;
  auto v1 = registry.Load("d", "synth:breast");
  ASSERT_TRUE(v1.ok());
  ASSERT_NE((*v1)->prepared, nullptr);

  // Warm the old generation's bundle.
  ASSERT_TRUE((*v1)->prepared->Groups("class", {}).ok());
  int cont = -1;
  for (size_t a = 0; a < (*v1)->db.num_attributes(); ++a) {
    if ((*v1)->db.is_continuous(static_cast<int>(a))) {
      cont = static_cast<int>(a);
      break;
    }
  }
  ASSERT_GE(cont, 0);
  ASSERT_NE((*v1)->prepared->Sorted(cont), nullptr);
  data::PreparedStats warm = (*v1)->prepared->stats();
  ASSERT_GT(warm.sort_builds + warm.group_builds, 0u);
  DatasetRegistry::Stats before = registry.stats();
  EXPECT_EQ(before.artifact_builds, warm.sort_builds + warm.group_builds);
  EXPECT_EQ(before.artifact_bytes, warm.bytes);

  // The replacement (generation bump) carries a fresh, empty bundle:
  // nothing derived from the old rows can leak into the new generation.
  auto v2 = registry.Load("d", "synth:breast");
  ASSERT_TRUE(v2.ok());
  EXPECT_GT((*v2)->generation, (*v1)->generation);
  EXPECT_NE((*v2)->prepared.get(), (*v1)->prepared.get());
  data::PreparedStats fresh = (*v2)->prepared->stats();
  EXPECT_EQ(fresh.sort_builds, 0u);
  EXPECT_EQ(fresh.group_builds, 0u);
  EXPECT_EQ(fresh.bytes, 0u);

  // The retired generation's build counters survive in the registry
  // stats (monotonic), while its bytes are released.
  DatasetRegistry::Stats after = registry.stats();
  EXPECT_EQ(after.artifact_builds, before.artifact_builds);
  EXPECT_EQ(after.artifact_bytes, 0u);
}

TEST(DatasetRegistryTest, ArtifactBytesChargeAgainstTheBudget) {
  // Measure one dataset's load size and artifact footprint first.
  auto probe = DatasetRegistry().Load("probe", "synth:transfusion");
  ASSERT_TRUE(probe.ok());
  const size_t one = (*probe)->memory_bytes;
  ASSERT_TRUE((*probe)->prepared->Groups("donated", {}).ok());
  for (size_t a = 0; a < (*probe)->db.num_attributes(); ++a) {
    (*probe)->prepared->Sorted(static_cast<int>(a));
  }
  const size_t artifacts = (*probe)->prepared->stats().bytes;
  ASSERT_GT(artifacts, 0u);
  // The test needs artifacts to be the tie-breaker, not the dominant
  // term; guard against the synth dataset shrinking under it.
  ASSERT_LE(artifacts, 2 * one);

  // Budget fits three bare datasets, but not three plus one warmed
  // bundle: building artifacts on a resident dataset must push the LRU
  // entry out at the next load.
  DatasetRegistry registry(3 * one + artifacts / 2);
  std::vector<std::string> evicted;
  registry.set_eviction_listener(
      [&](const std::shared_ptr<const ServedDataset>& ds) {
        evicted.push_back(ds->name);
      });
  auto a = registry.Load("a", "synth:transfusion");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(registry.Load("b", "synth:transfusion").ok());

  // Warm "a"'s bundle (this also refreshes its recency via Get).
  ASSERT_TRUE(registry.Get("a").ok());
  ASSERT_TRUE((*a)->prepared->Groups("donated", {}).ok());
  for (size_t at = 0; at < (*a)->db.num_attributes(); ++at) {
    (*a)->prepared->Sorted(static_cast<int>(at));
  }
  DatasetRegistry::Stats warm = registry.stats();
  EXPECT_EQ(warm.artifact_bytes, artifacts);

  ASSERT_TRUE(registry.Load("c", "synth:transfusion").ok());
  EXPECT_EQ(evicted, std::vector<std::string>{"b"});
  EXPECT_EQ(registry.ResidentNames(), (std::vector<std::string>{"c", "a"}));
}

TEST(DatasetRegistryTest, LoadOptionsPageDatasetsThroughTheSpillBackend) {
  // With a byte cap in the load options, every Load spills to a temp
  // columnar file and serves the dataset mmap-backed: the registry
  // charges only the (small) resident parts up front and the chunk
  // counters come alive as soon as anything touches column data.
  DatasetLoadOptions load_options;
  load_options.chunk_rows = 64;
  load_options.max_resident_bytes = 16 * 1024;
  DatasetRegistry registry(/*memory_budget_bytes=*/0, load_options);
  auto loaded = registry.Load("t", "synth:transfusion");
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE((*loaded)->db.paged());
  EXPECT_EQ((*loaded)->db.chunk_rows(), 64u);

  const size_t dense =
      DatasetRegistry().Load("probe", "synth:transfusion").value()->memory_bytes;
  EXPECT_LT((*loaded)->memory_bytes, dense);

  // A scalar read materializes the covering chunk; stats() sees it.
  (void)(*loaded)->db.continuous(1).value(0);
  DatasetRegistry::Stats s = registry.stats();
  EXPECT_GT(s.chunk_loads, 0u);
  EXPECT_GT(s.resident_chunk_bytes, 0u);
  EXPECT_LE(s.resident_chunk_bytes, load_options.max_resident_bytes);

  // Retired counters keep the totals monotonic across eviction.
  ASSERT_TRUE(registry.Evict("t"));
  DatasetRegistry::Stats after = registry.stats();
  EXPECT_EQ(after.resident_chunk_bytes, 0u);
  EXPECT_GE(after.chunk_loads, s.chunk_loads);
}

TEST(DatasetRegistryTest, BudgetTrimsColdChunksBeforeEvictingDatasets) {
  // Measure the paged load size first, then set a budget that fits two
  // paged datasets but not two plus their materialized chunks: the
  // enforcement must free cold chunk buffers and keep both datasets.
  DatasetLoadOptions load_options;
  load_options.chunk_rows = 64;
  load_options.max_resident_bytes = 1024 * 1024;
  const size_t one = DatasetRegistry(0, load_options)
                         .Load("probe", "synth:transfusion")
                         .value()
                         ->memory_bytes;

  DatasetRegistry registry(2 * one + 4096, load_options);
  std::vector<std::string> evicted;
  registry.set_eviction_listener(
      [&](const std::shared_ptr<const ServedDataset>& ds) {
        evicted.push_back(ds->name);
      });
  auto a = registry.Load("a", "synth:transfusion");
  ASSERT_TRUE(a.ok());
  // Materialize well over the 4KB of headroom in cold chunks.
  for (uint32_t r = 0; r < (*a)->db.num_rows(); r += 32) {
    (void)(*a)->db.continuous(1).value(r);
    (void)(*a)->db.continuous(2).value(r);
  }
  ASSERT_GT(registry.stats().resident_chunk_bytes, 4096u);

  ASSERT_TRUE(registry.Load("b", "synth:transfusion").ok());
  EXPECT_TRUE(evicted.empty()) << "a whole dataset was evicted where "
                                  "trimming cold chunks sufficed";
  EXPECT_EQ(registry.stats().resident, 2u);
  EXPECT_GT(registry.stats().chunk_evictions, 0u);
}

TEST(DatasetRegistryTest, ResidentNamesIsMruFirst) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Load("a", "synth:breast").ok());
  ASSERT_TRUE(registry.Load("b", "synth:transfusion").ok());
  EXPECT_EQ(registry.ResidentNames(), (std::vector<std::string>{"b", "a"}));
  ASSERT_TRUE(registry.Get("a").ok());
  EXPECT_EQ(registry.ResidentNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace sdadcs::serve
