// Server facade end to end: cached results are byte-identical to a
// direct Miner::Mine(MineRequest) run, identical concurrent requests
// coalesce into one underlying run, a cancelled waiter never poisons
// the shared cache entry, and over-capacity load is shed explicitly.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/contrast.h"
#include "core/miner.h"
#include "engine/registry.h"
#include "gtest/gtest.h"
#include "serve/dataset_registry.h"
#include "serve/server.h"
#include "util/run_control.h"

namespace sdadcs::serve {
namespace {

// Byte-exact rendering (same idiom as core/miner_test): any numeric or
// ordering drift between the served and the directly mined result shows
// up as a string diff.
std::string RenderResult(const std::vector<core::ContrastPattern>& patterns) {
  std::string out;
  char buf[512];
  for (const core::ContrastPattern& p : patterns) {
    out += p.itemset.Key();
    for (double c : p.counts) {
      std::snprintf(buf, sizeof(buf), " %.17g", c);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  " | diff=%.17g measure=%.17g chi2=%.17g p=%.17g\n", p.diff,
                  p.measure, p.chi2, p.p_value);
    out += buf;
  }
  return out;
}

core::MinerConfig TestConfig() {
  core::MinerConfig config;
  config.max_depth = 2;
  config.top_k = 20;
  return config;
}

MineCall BreastCall() {
  MineCall call;
  call.dataset = "breast";
  call.config = TestConfig();
  call.group_attr = "class";
  return call;
}

// Blocks the mining engine mid-run via the RunControl progress callback,
// so tests can deterministically stage followers, cancellations and
// rejections while a run is in flight.
class MiningGate {
 public:
  util::RunControl Control() {
    util::RunControl control;
    control.set_progress_callback([this](const util::RunProgress&) {
      std::unique_lock<std::mutex> lock(mu_);
      mining_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    });
    return control;
  }

  void AwaitMining() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return mining_; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool mining_ = false;
  bool released_ = false;
};

TEST(ServerTest, ColdMissThenWarmHitByteIdenticalToDirectMine) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());

  MineOutcome cold = server.Mine(BreastCall());
  ASSERT_EQ(cold.verdict, Verdict::kOk) << cold.status.message();
  EXPECT_EQ(cold.cache, CacheStatus::kMiss);
  EXPECT_EQ(cold.engine, core::EngineKind::kSerial);
  ASSERT_NE(cold.result, nullptr);
  EXPECT_EQ(cold.result->completion, core::Completion::kComplete);
  EXPECT_GT(cold.result->contrasts.size(), 0u);

  MineOutcome warm = server.Mine(BreastCall());
  ASSERT_EQ(warm.verdict, Verdict::kOk);
  EXPECT_EQ(warm.cache, CacheStatus::kHit);
  // The hit serves the very same immutable result, with no second run.
  EXPECT_EQ(warm.result.get(), cold.result.get());
  EXPECT_EQ(server.Stats().runs_started, 1u);

  // Byte-identical to mining the same spec directly, outside the server.
  auto db = LoadDatasetFromSpec("synth:breast");
  ASSERT_TRUE(db.ok());
  core::MineRequest request;
  request.group_attr = "class";
  auto direct = core::Miner(TestConfig()).Mine(*db, request);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(RenderResult(warm.result->contrasts),
            RenderResult(direct->contrasts));
}

TEST(ServerTest, UnknownDatasetAndInvalidConfigFailFast) {
  Server server(ServerOptions{});
  MineCall call = BreastCall();
  MineOutcome missing = server.Mine(call);
  EXPECT_EQ(missing.verdict, Verdict::kError);
  EXPECT_EQ(missing.status.code(), util::StatusCode::kNotFound);

  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());
  call.config.alpha = 2.0;
  MineOutcome invalid = server.Mine(call);
  EXPECT_EQ(invalid.verdict, Verdict::kError);
  EXPECT_EQ(invalid.status.code(), util::StatusCode::kInvalidArgument);
  // Neither request touched the cache or an admission slot.
  ServerStats s = server.Stats();
  EXPECT_EQ(s.cache.misses, 0u);
  EXPECT_EQ(s.admission.admitted, 0u);
  EXPECT_EQ(s.errors, 2u);
}

TEST(ServerTest, IdenticalConcurrentRequestsCostOneRun) {
  ServerOptions options;
  options.max_concurrent_runs = 4;  // capacity is not the constraint here
  Server server(options);
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());

  MiningGate gate;
  MineCall leader_call = BreastCall();
  leader_call.run_control = gate.Control();
  MineOutcome leader_out;
  std::thread leader([&] { leader_out = server.Mine(leader_call); });
  gate.AwaitMining();

  constexpr int kFollowers = 3;
  std::vector<MineOutcome> follower_out(kFollowers);
  std::vector<std::thread> followers;
  for (int i = 0; i < kFollowers; ++i) {
    followers.emplace_back(
        [&, i] { follower_out[i] = server.Mine(BreastCall()); });
  }
  // The followers must be coalesced onto the in-flight run before the
  // leader is allowed to finish — this is what makes the test
  // deterministic rather than a race.
  while (server.Stats().cache.coalesced <
         static_cast<uint64_t>(kFollowers)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.Release();
  leader.join();
  for (std::thread& t : followers) t.join();

  ASSERT_EQ(leader_out.verdict, Verdict::kOk) << leader_out.status.message();
  EXPECT_EQ(leader_out.cache, CacheStatus::kMiss);
  for (const MineOutcome& out : follower_out) {
    ASSERT_EQ(out.verdict, Verdict::kOk);
    EXPECT_EQ(out.cache, CacheStatus::kShared);
    // Everyone shares the leader's immutable result object.
    EXPECT_EQ(out.result.get(), leader_out.result.get());
  }
  EXPECT_EQ(server.Stats().runs_started, 1u);
  EXPECT_EQ(server.Stats().requests, 1u + kFollowers);
}

TEST(ServerTest, CancelledWaiterDoesNotPoisonTheSharedEntry) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());

  MiningGate gate;
  MineCall leader_call = BreastCall();
  leader_call.run_control = gate.Control();
  MineOutcome leader_out;
  std::thread leader([&] { leader_out = server.Mine(leader_call); });
  gate.AwaitMining();

  // A follower joins the in-flight run, then cancels only itself.
  MineCall follower_call = BreastCall();
  util::RunControl follower_control;
  follower_call.run_control = follower_control;
  MineOutcome follower_out;
  std::thread follower([&] { follower_out = server.Mine(follower_call); });
  while (server.Stats().cache.coalesced < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  follower_control.Cancel();
  follower.join();
  EXPECT_EQ(follower_out.verdict, Verdict::kCancelled);
  EXPECT_EQ(follower_out.result, nullptr);

  // The leader was unaffected: it completes, publishes, and later
  // identical requests are served from the clean cache entry.
  gate.Release();
  leader.join();
  ASSERT_EQ(leader_out.verdict, Verdict::kOk) << leader_out.status.message();
  EXPECT_EQ(leader_out.result->completion, core::Completion::kComplete);

  MineOutcome warm = server.Mine(BreastCall());
  ASSERT_EQ(warm.verdict, Verdict::kOk);
  EXPECT_EQ(warm.cache, CacheStatus::kHit);
  EXPECT_EQ(warm.result.get(), leader_out.result.get());
  EXPECT_EQ(server.Stats().runs_started, 1u);
}

TEST(ServerTest, OverCapacityBypassRequestsAreShedNotBlocked) {
  ServerOptions options;
  options.max_concurrent_runs = 1;
  options.max_queue = 0;
  Server server(options);
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());

  MiningGate gate;
  MineCall leader_call = BreastCall();
  leader_call.run_control = gate.Control();
  MineOutcome leader_out;
  std::thread leader([&] { leader_out = server.Mine(leader_call); });
  gate.AwaitMining();

  // Bypass the cache so the burst cannot coalesce: each call needs its
  // own slot, and with the only slot held and no queue it must be shed
  // immediately — not blocked.
  MineCall burst = BreastCall();
  burst.use_cache = false;
  MineOutcome shed = server.Mine(burst);
  EXPECT_EQ(shed.verdict, Verdict::kRejectedBusy);
  EXPECT_EQ(shed.cache, CacheStatus::kBypass);
  EXPECT_EQ(shed.result, nullptr);

  gate.Release();
  leader.join();
  ASSERT_EQ(leader_out.verdict, Verdict::kOk);
  ServerStats s = server.Stats();
  EXPECT_EQ(s.rejected_busy, 1u);
  EXPECT_EQ(s.runs_started, 1u);
  EXPECT_EQ(s.admission.rejected_busy, 1u);
}

TEST(ServerTest, PartialResultsAnswerTheCallerButAreNotCached) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());

  MineCall limited = BreastCall();
  limited.run_control =
      util::RunControl::WithDeadline(std::chrono::milliseconds(0));
  MineOutcome partial = server.Mine(limited);
  ASSERT_EQ(partial.verdict, Verdict::kOk) << partial.status.message();
  ASSERT_NE(partial.result, nullptr);
  EXPECT_EQ(partial.result->completion, core::Completion::kDeadlineExceeded);

  // The partial run was abandoned, not published: the next unlimited
  // request finds no entry and mines for real.
  ServerStats s = server.Stats();
  EXPECT_EQ(s.cache.inserts, 0u);
  EXPECT_EQ(s.cache.abandons, 1u);
  MineOutcome full = server.Mine(BreastCall());
  ASSERT_EQ(full.verdict, Verdict::kOk);
  EXPECT_EQ(full.cache, CacheStatus::kMiss);
  EXPECT_EQ(full.result->completion, core::Completion::kComplete);
  EXPECT_EQ(server.Stats().runs_started, 2u);
}

TEST(ServerTest, ServerDefaultsOnlyBoundTheUnlimited) {
  ServerOptions options;
  options.default_node_budget = 1;  // absurdly tight server-wide cap
  Server server(options);
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());

  // A request without its own budget inherits the server's and drains
  // almost immediately.
  MineOutcome capped = server.Mine(BreastCall());
  ASSERT_EQ(capped.verdict, Verdict::kOk);
  EXPECT_EQ(capped.result->completion, core::Completion::kBudgetExhausted);

  // A request with its own (generous) budget keeps it.
  MineCall own = BreastCall();
  own.run_control.set_node_budget(100000000);
  MineOutcome free_run = server.Mine(own);
  ASSERT_EQ(free_run.verdict, Verdict::kOk);
  EXPECT_EQ(free_run.result->completion, core::Completion::kComplete);
}

TEST(ServerTest, EngineResolutionAndDistinctCacheUniverses) {
  ServerOptions options;
  options.parallel_threshold_rows = 100;  // breast (699 rows) goes parallel
  options.parallel_threads = 2;
  Server server(options);
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());

  MineCall auto_call = BreastCall();
  MineOutcome parallel_out = server.Mine(auto_call);
  ASSERT_EQ(parallel_out.verdict, Verdict::kOk);
  EXPECT_EQ(parallel_out.engine, core::EngineKind::kParallel);

  // An explicit serial request is a different cache universe: it must
  // run, not hit the parallel entry.
  MineCall serial_call = BreastCall();
  serial_call.engine = core::EngineKind::kSerial;
  MineOutcome serial_out = server.Mine(serial_call);
  ASSERT_EQ(serial_out.verdict, Verdict::kOk);
  EXPECT_EQ(serial_out.engine, core::EngineKind::kSerial);
  EXPECT_EQ(serial_out.cache, CacheStatus::kMiss);
  EXPECT_EQ(server.Stats().runs_started, 2u);

  // Both warm paths hit their own entries.
  EXPECT_EQ(server.Mine(auto_call).cache, CacheStatus::kHit);
  EXPECT_EQ(server.Mine(serial_call).cache, CacheStatus::kHit);
  EXPECT_EQ(server.Stats().runs_started, 2u);
}

TEST(ServerTest, EveryRegistryEngineIsServableWithItsOwnRequestKey) {
  // The same dataset + config served through each registered engine must
  // succeed, and each engine must land in its own cache universe: all
  // the RequestKeys stamped on the outcomes are pairwise distinct.
  ServerOptions options;
  options.parallel_threads = 2;
  options.window_rows = 200;
  Server server(options);
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());

  std::set<std::string> keys;
  size_t engines = 0;
  for (const auto& entry : engine::EngineRegistry::Global().entries()) {
    MineCall call = BreastCall();
    call.engine = entry.kind;
    MineOutcome out = server.Mine(call);
    ASSERT_EQ(out.verdict, Verdict::kOk)
        << entry.name << ": " << out.status.message();
    EXPECT_EQ(out.engine, entry.kind) << entry.name;
    ASSERT_NE(out.result, nullptr) << entry.name;
    EXPECT_EQ(out.result->completion, core::Completion::kComplete)
        << entry.name;
    EXPECT_TRUE(keys.insert(out.key.ToString()).second)
        << entry.name << " collided on key " << out.key.ToString();
    ++engines;
  }
  EXPECT_EQ(keys.size(), engines);
  EXPECT_EQ(server.Stats().runs_started, engines);

  // Warm re-serve through a distinct engine hits that engine's entry.
  MineCall beam_call = BreastCall();
  beam_call.engine = core::EngineKind::kBeam;
  MineOutcome warm = server.Mine(beam_call);
  ASSERT_EQ(warm.verdict, Verdict::kOk);
  EXPECT_EQ(warm.cache, CacheStatus::kHit);
  EXPECT_EQ(server.Stats().runs_started, engines);
}

TEST(ServerTest, PreparedArtifactsReusedAcrossCacheMisses) {
  // The warm-path guarantee: a second mine that misses the ResultCache
  // (different config, same dataset) runs the engine again but rebuilds
  // zero artifacts — sort indexes, root bounds and resolved groups all
  // come out of the dataset's prepared bundle.
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());

  MineOutcome cold = server.Mine(BreastCall());
  ASSERT_EQ(cold.verdict, Verdict::kOk) << cold.status.message();
  ASSERT_EQ(cold.cache, CacheStatus::kMiss);
  ServerStats s1 = server.Stats();
  EXPECT_GT(s1.registry.artifact_builds, 0u);
  EXPECT_GT(s1.registry.artifact_bytes, 0u);

  MineCall different = BreastCall();
  different.config.top_k = 77;  // new canonical key, same dataset
  MineOutcome warm = server.Mine(different);
  ASSERT_EQ(warm.verdict, Verdict::kOk) << warm.status.message();
  ASSERT_EQ(warm.cache, CacheStatus::kMiss);
  EXPECT_EQ(server.Stats().runs_started, 2u);

  ServerStats s2 = server.Stats();
  EXPECT_EQ(s2.registry.artifact_builds, s1.registry.artifact_builds)
      << "the cache-missed run rebuilt artifacts";
  EXPECT_GT(s2.registry.artifact_hits, s1.registry.artifact_hits);
}

TEST(ServerTest, ReplacingADatasetInvalidatesItsCachedResults) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());
  ASSERT_EQ(server.Mine(BreastCall()).cache, CacheStatus::kMiss);
  ASSERT_EQ(server.Mine(BreastCall()).cache, CacheStatus::kHit);

  // Same name, new load: the generation bump re-keys every request and
  // the eviction listener reclaims the stale entries.
  ASSERT_TRUE(server.Load("breast", "synth:breast").ok());
  EXPECT_GE(server.Stats().cache.invalidations, 1u);
  EXPECT_EQ(server.Mine(BreastCall()).cache, CacheStatus::kMiss);
  EXPECT_EQ(server.Stats().runs_started, 2u);

  // Evicting the dataset entirely turns requests into NotFound errors.
  EXPECT_TRUE(server.Evict("breast"));
  MineOutcome gone = server.Mine(BreastCall());
  EXPECT_EQ(gone.verdict, Verdict::kError);
  EXPECT_EQ(gone.status.code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace sdadcs::serve
