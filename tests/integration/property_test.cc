// Parameterized property suites: invariants that must hold for every
// mined pattern across sweeps of datasets, measures, and thresholds.

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/requests.h"
#include "core/miner.h"
#include "core/support.h"
#include "synth/simulated.h"
#include "synth/uci_like.h"

namespace sdadcs {
namespace {

using core::ContrastPattern;
using core::MeasureKind;
using core::Miner;
using core::MinerConfig;

using test_support::GroupRequest;
using test_support::GroupsRequest;

data::Dataset MakeByName(const std::string& name) {
  if (name == "sim1") return synth::MakeSimulated1(800);
  if (name == "sim2") return synth::MakeSimulated2(800);
  if (name == "sim3") return synth::MakeSimulated3(800);
  if (name == "sim4") return synth::MakeSimulated4(1200);
  return synth::MakeFigure2Example(1500);
}

// ---------------------------------------------------------------------
// Sweep 1: dataset x measure x pruning mode.
// ---------------------------------------------------------------------

using MinerParams = std::tuple<std::string, MeasureKind, bool>;

class MinerInvariants : public testing::TestWithParam<MinerParams> {};

TEST_P(MinerInvariants, AllPatternsSatisfyContracts) {
  const auto& [ds_name, measure, meaningful] = GetParam();
  data::Dataset db = MakeByName(ds_name);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());

  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.measure = measure;
  cfg.meaningful_pruning = meaningful;
  Miner miner(cfg);
  auto result = miner.Mine(db, GroupsRequest(*gi));
  ASSERT_TRUE(result.ok());

  double prev_measure = std::numeric_limits<double>::infinity();
  std::set<std::string> keys;
  for (const ContrastPattern& p : result->contrasts) {
    // Structural contracts.
    EXPECT_GE(p.itemset.size(), 1u);
    EXPECT_LE(p.itemset.size(), static_cast<size_t>(cfg.max_depth));
    EXPECT_TRUE(keys.insert(p.itemset.Key()).second) << "duplicate";
    // Sortedness.
    EXPECT_LE(p.measure, prev_measure + 1e-12);
    prev_measure = p.measure;
    // Statistical contracts of Eqs. 2-3.
    EXPECT_GT(p.diff, cfg.delta);
    EXPECT_LT(p.p_value, cfg.alpha);
    EXPECT_GE(p.purity, 0.0);
    EXPECT_LE(p.purity, 1.0);
    for (size_t g = 0; g < p.supports.size(); ++g) {
      EXPECT_GE(p.supports[g], 0.0);
      EXPECT_LE(p.supports[g], 1.0);
      EXPECT_LE(p.counts[g],
                static_cast<double>(gi->group_size(static_cast<int>(g))));
    }
    // Reported counts must equal a from-scratch recount of the cover —
    // this catches any bookkeeping drift in splitting/merging.
    core::GroupCounts recount =
        core::CountMatches(db, *gi, p.itemset, gi->base_selection());
    for (size_t g = 0; g < p.counts.size(); ++g) {
      EXPECT_DOUBLE_EQ(p.counts[g], recount.counts[g])
          << p.itemset.ToString(db);
    }
    // Measure consistency.
    EXPECT_NEAR(p.measure, core::MeasureValue(measure, p.supports), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerInvariants,
    testing::Combine(
        testing::Values("sim1", "sim2", "sim3", "sim4", "fig2"),
        testing::Values(MeasureKind::kSupportDiff, MeasureKind::kSurprising,
                        MeasureKind::kPurityRatio),
        testing::Bool()),
    [](const testing::TestParamInfo<MinerParams>& info) {
      return std::get<0>(info.param) + "_" +
             core::MeasureKindName(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_pruned" : "_np");
    });

// ---------------------------------------------------------------------
// Sweep 2: delta monotonicity — raising delta never yields weaker
// patterns and never yields more of them.
// ---------------------------------------------------------------------

class DeltaSweep : public testing::TestWithParam<double> {};

TEST_P(DeltaSweep, PatternsRespectDelta) {
  double delta = GetParam();
  data::Dataset db = synth::MakeSimulated4(1200);
  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.delta = delta;
  auto result = Miner(cfg).Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(result.ok());
  for (const ContrastPattern& p : result->contrasts) {
    EXPECT_GT(p.diff, delta);
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSweep,
                         testing::Values(0.05, 0.1, 0.2, 0.4),
                         [](const testing::TestParamInfo<double>& info) {
                           return "delta_" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

TEST(DeltaMonotonicityTest, HigherDeltaFewerOrEqualPatterns) {
  data::Dataset db = synth::MakeSimulated4(1200);
  size_t prev = SIZE_MAX;
  for (double delta : {0.05, 0.15, 0.3, 0.5}) {
    MinerConfig cfg;
    cfg.max_depth = 2;
    cfg.delta = delta;
    auto result = Miner(cfg).Mine(db, GroupRequest("Group"));
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->contrasts.size(), prev);
    prev = result->contrasts.size();
  }
}

// ---------------------------------------------------------------------
// Sweep 3: alpha — stricter significance can only shrink the output.
// ---------------------------------------------------------------------

TEST(AlphaMonotonicityTest, StricterAlphaFewerOrEqualPatterns) {
  data::Dataset db = synth::MakeFigure2Example(2500);
  size_t prev = SIZE_MAX;
  for (double alpha : {0.1, 0.05, 0.01, 0.001}) {
    MinerConfig cfg;
    cfg.max_depth = 2;
    cfg.alpha = alpha;
    auto result = Miner(cfg).Mine(db, GroupRequest("Group"));
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->contrasts.size(), prev) << "alpha " << alpha;
    prev = result->contrasts.size();
  }
}

// ---------------------------------------------------------------------
// Sweep 4: UCI-like datasets — the miner completes and returns sane
// output on every evaluation dataset at depth 1.
// ---------------------------------------------------------------------

class UciSmoke : public testing::TestWithParam<std::string> {};

TEST_P(UciSmoke, DepthOneMiningIsSane) {
  synth::NamedDataset nd = synth::MakeUciLike(GetParam());
  MinerConfig cfg;
  cfg.max_depth = 1;
  Miner miner(cfg);
  auto result =
      miner.Mine(nd.db, GroupRequest(nd.group_attr, nd.groups));
  ASSERT_TRUE(result.ok());
  for (const ContrastPattern& p : result->contrasts) {
    EXPECT_EQ(p.itemset.size(), 1u);
    EXPECT_GT(p.diff, cfg.delta);
  }
  EXPECT_GT(result->counters.partitions_evaluated, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, UciSmoke,
                         testing::Values("adult", "spambase", "breast",
                                         "mammography", "transfusion",
                                         "shuttle", "credit_card",
                                         "census_income", "ionosphere",
                                         "covtype"),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace sdadcs
