// Whole-pipeline tests: generators -> CSV round trip -> miner ->
// meaningfulness filters, checked against the planted ground truth.

#include <gtest/gtest.h>

#include "core/meaningful.h"
#include "common/requests.h"
#include "core/miner.h"
#include "data/csv.h"
#include "subgroup/beam.h"
#include "synth/manufacturing.h"
#include "synth/uci_like.h"

namespace sdadcs {
namespace {

using core::ContrastPattern;
using core::Miner;
using core::MineRequest;
using core::MinerConfig;

// Every synth fixture carries its group spec; this turns it into the
// unified MineRequest the engines take.
MineRequest RequestFor(const synth::NamedDataset& nd) {
  return test_support::GroupRequest(nd.group_attr, nd.groups);
}

TEST(EndToEndTest, ManufacturingTriageFindsPlantedCause) {
  synth::ManufacturingOptions opt;
  opt.population = 2000;
  opt.fails = 400;
  opt.noise_continuous = 4;
  opt.noise_categorical = 3;
  synth::NamedDataset mfg = synth::MakeManufacturing(opt);

  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.delta = 0.1;
  Miner miner(cfg);
  auto result = miner.Mine(mfg.db, RequestFor(mfg));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->contrasts.empty());

  // The planted cause must surface: CAM entity SCE (or its functional
  // twin, placement tool JVF) and elevated thermal statistics.
  bool found_cam = false;
  bool found_thermal = false;
  for (const ContrastPattern& p : result->contrasts) {
    for (const core::Item& it : p.itemset.items()) {
      const std::string& name = mfg.db.schema().attribute(it.attr).name;
      if (name == "cam_entity" || name == "placement_tool") {
        found_cam = true;
      }
      if (name == "cam_time_above_liquidus" ||
          name == "cam_peak_temperature" || name == "cam_peak_temp_std" ||
          name == "die_temp_above_std") {
        found_thermal = true;
      }
    }
  }
  EXPECT_TRUE(found_cam);
  EXPECT_TRUE(found_thermal);

  // No pattern built purely from noise sensors should rank top-5.
  size_t check = std::min<size_t>(5, result->contrasts.size());
  for (size_t i = 0; i < check; ++i) {
    bool all_noise = true;
    for (const core::Item& it : result->contrasts[i].itemset.items()) {
      const std::string& name =
          mfg.db.schema().attribute(it.attr).name;
      if (name.rfind("sensor_", 0) != 0 && name.rfind("context_", 0) != 0) {
        all_noise = false;
      }
    }
    EXPECT_FALSE(all_noise) << "rank " << i;
  }
}

TEST(EndToEndTest, CsvRoundTripPreservesMiningResult) {
  synth::NamedDataset adult = synth::MakeAdultLike();
  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.attributes = {"age", "hours_per_week", "occupation"};
  Miner miner(cfg);
  auto direct = miner.Mine(adult.db, RequestFor(adult));
  ASSERT_TRUE(direct.ok());

  std::string csv = data::WriteCsvString(adult.db);
  auto reloaded = data::ReadCsvString(csv);
  ASSERT_TRUE(reloaded.ok());
  auto via_csv = miner.Mine(*reloaded, RequestFor(adult));
  ASSERT_TRUE(via_csv.ok());

  ASSERT_EQ(direct->contrasts.size(), via_csv->contrasts.size());
  for (size_t i = 0; i < direct->contrasts.size(); ++i) {
    EXPECT_EQ(direct->contrasts[i].itemset.Key(),
              via_csv->contrasts[i].itemset.Key());
    EXPECT_NEAR(direct->contrasts[i].measure,
                via_csv->contrasts[i].measure, 1e-9);
  }
}

TEST(EndToEndTest, SdadBeatsGreedyBaselineOnInteraction) {
  // On Adult-like data the age x hours interaction exists only for
  // Doctorates; verify SDAD-CS finds a 2-attribute pattern that is
  // productive, while classifying tools agree it is meaningful.
  synth::NamedDataset adult = synth::MakeAdultLike();
  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.measure = core::MeasureKind::kSurprising;
  cfg.attributes = {"age", "hours_per_week"};
  Miner miner(cfg);
  auto result = miner.Mine(adult.db, RequestFor(adult));
  ASSERT_TRUE(result.ok());
  bool joint = false;
  for (const ContrastPattern& p : result->contrasts) {
    if (p.itemset.size() == 2) joint = true;
  }
  EXPECT_TRUE(joint);

  auto gi = data::GroupInfo::CreateForValues(
      adult.db, *adult.db.schema().IndexOf(adult.group_attr), adult.groups);
  ASSERT_TRUE(gi.ok());
  core::MeaningfulnessReport report =
      core::ClassifyPatterns(adult.db, *gi, cfg, result->contrasts);
  // The filtered output should be dominated by meaningful patterns.
  EXPECT_GE(report.meaningful * 2, static_cast<int>(result->contrasts.size()));
}

TEST(EndToEndTest, FilteredListIsSubsetOfUnfiltered) {
  synth::NamedDataset shuttle = synth::MakeShuttleLike();
  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.attributes = {"attr1", "attr2", "attr9"};
  auto filtered = Miner(cfg).Mine(shuttle.db, RequestFor(shuttle));
  cfg.meaningful_pruning = false;
  auto raw = Miner(cfg).Mine(shuttle.db, RequestFor(shuttle));
  ASSERT_TRUE(filtered.ok());
  ASSERT_TRUE(raw.ok());
  EXPECT_LE(filtered->contrasts.size(), raw->contrasts.size());
}

}  // namespace
}  // namespace sdadcs
