// Failure-injection / edge-case suite: degenerate columns, missing
// data, tiny groups, high-cardinality attributes, and k > 2 groups must
// never crash the miner and must keep its statistical contracts.

#include <gtest/gtest.h>

#include "common/requests.h"
#include "core/miner.h"
#include "core/support.h"
#include "util/logging.h"
#include "util/random.h"

namespace sdadcs {
namespace {

using core::ContrastPattern;
using core::Miner;
using core::MinerConfig;

using test_support::GroupRequest;

MinerConfig SmallConfig() {
  MinerConfig cfg;
  cfg.max_depth = 2;
  return cfg;
}

TEST(RobustnessTest, AllMissingContinuousColumn) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  int dead = b.AddContinuous("dead");
  util::Rng rng(91);
  for (int i = 0; i < 300; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    b.AppendContinuous(x, i % 2 == 0 ? rng.Uniform(0, 1)
                                     : rng.Uniform(1, 2));
    b.AppendMissing(dead);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto result = Miner(SmallConfig()).Mine(*db, GroupRequest("g"));
  ASSERT_TRUE(result.ok());
  // The live attribute still yields its contrast.
  EXPECT_FALSE(result->contrasts.empty());
  for (const ContrastPattern& p : result->contrasts) {
    for (const core::Item& it : p.itemset.items()) {
      EXPECT_NE(db->schema().attribute(it.attr).name, "dead");
    }
  }
}

TEST(RobustnessTest, ConstantColumnsHandled) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int flat_num = b.AddContinuous("flat_num");
  int flat_cat = b.AddCategorical("flat_cat");
  for (int i = 0; i < 200; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    b.AppendContinuous(flat_num, 7.0);
    b.AppendCategorical(flat_cat, "only");
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto result = Miner(SmallConfig()).Mine(*db, GroupRequest("g"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contrasts.empty());
}

TEST(RobustnessTest, HighCardinalityCategorical) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int id_like = b.AddCategorical("id_like");
  util::Rng rng(92);
  for (int i = 0; i < 500; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    // 100 distinct values: every value is rare -> everything should be
    // pruned by minimum deviation / expected count, quickly.
    b.AppendCategorical(id_like,
                        "v" + std::to_string(rng.NextBelow(100)));
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto result = Miner(SmallConfig()).Mine(*db, GroupRequest("g"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contrasts.empty());
  EXPECT_GT(result->counters.pruned_min_support +
                result->counters.pruned_low_expected,
            0u);
}

TEST(RobustnessTest, HeavilyImbalancedGroups) {
  // 2% anomaly group, like the manufacturing data.
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(93);
  for (int i = 0; i < 3000; ++i) {
    bool rare = rng.Bernoulli(0.02);
    b.AppendCategorical(g, rare ? "rare" : "common");
    b.AppendContinuous(x, rare ? rng.Gaussian(8.0, 0.5)
                               : rng.Gaussian(0.0, 2.0));
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto result = Miner(SmallConfig()).Mine(*db, GroupRequest("g"));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->contrasts.empty());
  // Supports stay per-group: the rare group's pattern support is high
  // even though its absolute count is tiny.
  EXPECT_GT(result->contrasts.front().diff, 0.8);
}

TEST(RobustnessTest, ThreeGroupMining) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(94);
  for (int i = 0; i < 900; ++i) {
    int which = i % 3;
    const char* names[] = {"low", "mid", "high"};
    b.AppendCategorical(g, names[which]);
    b.AppendContinuous(x, rng.Gaussian(4.0 * which, 1.0));
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto result = Miner(SmallConfig()).Mine(*db, GroupRequest("g"));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->contrasts.empty());
  for (const ContrastPattern& p : result->contrasts) {
    EXPECT_EQ(p.supports.size(), 3u);
    EXPECT_GT(p.diff, 0.1);
    EXPECT_LT(p.p_value, 0.05);
  }
}

TEST(RobustnessTest, SingleContinuousAttributeDepthBeyondAttrs) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(95);
  for (int i = 0; i < 300; ++i) {
    double v = rng.NextDouble();
    b.AppendCategorical(g, v < 0.4 ? "a" : "b");
    b.AppendContinuous(x, v);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  MinerConfig cfg;
  cfg.max_depth = 5;  // more than the attribute count
  auto result = Miner(cfg).Mine(*db, GroupRequest("g"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->contrasts.empty());
}

TEST(RobustnessTest, DuplicatedRowsDoNotBreakMedians) {
  // Massive ties: the "number of unique values far less than data
  // points" caveat from the paper's Eq. 6 discussion.
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 0; i < 600; ++i) {
    int v = i % 3;  // only 3 distinct values
    b.AppendCategorical(g, v == 0 ? "a" : "b");
    b.AppendContinuous(x, static_cast<double>(v));
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto result = Miner(SmallConfig()).Mine(*db, GroupRequest("g"));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->contrasts.empty());
  // x = 0 exactly identifies group a.
  EXPECT_NEAR(result->contrasts.front().diff, 1.0, 0.01);
}

TEST(RobustnessTest, MinCoverageSuppressesSlivers) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(96);
  for (int i = 0; i < 400; ++i) {
    double v = rng.NextDouble();
    b.AppendCategorical(g, v < 0.5 ? "a" : "b");
    b.AppendContinuous(x, v);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  MinerConfig cfg = SmallConfig();
  cfg.min_coverage = 150;
  auto result = Miner(cfg).Mine(*db, GroupRequest("g"));
  ASSERT_TRUE(result.ok());
  for (const ContrastPattern& p : result->contrasts) {
    double total = 0.0;
    for (double c : p.counts) total += c;
    EXPECT_GE(total, 150.0);
  }
}

TEST(RobustnessTest, EntropyPurityMeasureRuns) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(97);
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextDouble();
    b.AppendCategorical(g, v < 0.3 ? "a" : "b");
    b.AppendContinuous(x, v);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  MinerConfig cfg = SmallConfig();
  cfg.measure = core::MeasureKind::kEntropyPurity;
  auto result = Miner(cfg).Mine(*db, GroupRequest("g"));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->contrasts.empty());
  // Pure boundary region must surface with measure near 1.
  EXPECT_GT(result->contrasts.front().measure, 0.8);
}

}  // namespace
}  // namespace sdadcs
