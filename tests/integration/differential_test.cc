// Differential tests against brute-force oracles on small inputs.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/requests.h"
#include "core/anytime.h"
#include "core/miner.h"
#include "core/productivity.h"
#include "data/chunks.h"
#include "data/csv.h"
#include "data/prepared.h"
#include "data/spill.h"
#include "engine/registry.h"
#include "engine/session.h"
#include "synth/uci_like.h"
#include "util/random.h"

namespace sdadcs {
namespace {

using core::ContrastPattern;
using core::Miner;
using core::MinerConfig;

using test_support::GroupsRequest;

// Brute force: the best support difference achievable by ANY single
// interval (lo, hi] with endpoints on observed values of `attr`.
double BruteForceBestIntervalDiff(const data::Dataset& db,
                                  const data::GroupInfo& gi, int attr,
                                  double delta) {
  std::vector<double> values;
  for (uint32_t r : gi.base_selection()) {
    double v = db.continuous(attr).value(r);
    if (!std::isnan(v)) values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  // Candidate endpoints: every observed value plus one below the min.
  std::vector<double> edges;
  edges.push_back(values.front() - 1.0);
  edges.insert(edges.end(), values.begin(), values.end());

  double best = 0.0;
  for (size_t i = 0; i < edges.size(); ++i) {
    for (size_t j = i + 1; j < edges.size(); ++j) {
      std::vector<double> counts(gi.num_groups(), 0.0);
      for (uint32_t r : gi.base_selection()) {
        double v = db.continuous(attr).value(r);
        if (!std::isnan(v) && v > edges[i] && v <= edges[j]) {
          counts[gi.group_of(r)] += 1.0;
        }
      }
      std::vector<double> supports(counts.size());
      for (size_t g = 0; g < counts.size(); ++g) {
        supports[g] =
            counts[g] / static_cast<double>(gi.group_size(static_cast<int>(g)));
      }
      double diff = core::SupportDifference(supports);
      if (diff > delta) best = std::max(best, diff);
    }
  }
  return best;
}

TEST(DifferentialTest, SdadApproximatesOptimalIntervalAndLocatesBand) {
  // SDAD-CS restricts interval endpoints to the recursive median grid,
  // so it is NOT an exhaustive interval optimizer (the paper makes the
  // same observation when Cortana's free endpoints post higher raw
  // diffs). The contract checked here: on a planted band, the miner (a)
  // recovers a substantial fraction of the brute-force optimal interval
  // diff and (b) its top pattern overlaps the planted band — the
  // *location* is right even when the edges are grid-quantized.
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    util::Rng rng(seed);
    data::DatasetBuilder b;
    int g = b.AddCategorical("g");
    int x = b.AddContinuous("x");
    double band_lo = rng.Uniform(10.0, 60.0);
    double band_hi = band_lo + rng.Uniform(15.0, 30.0);
    for (int i = 0; i < 800; ++i) {
      double v = rng.Uniform(0.0, 100.0);
      bool in_band = v > band_lo && v <= band_hi;
      b.AppendCategorical(g, (in_band ? rng.Bernoulli(0.85)
                                      : rng.Bernoulli(0.15))
                                 ? "a"
                                 : "b");
      b.AppendContinuous(x, v);
    }
    auto db = std::move(b).Build();
    ASSERT_TRUE(db.ok());
    auto gi = data::GroupInfo::Create(*db, 0);
    ASSERT_TRUE(gi.ok());

    double optimal = BruteForceBestIntervalDiff(*db, *gi, 1, 0.1);
    ASSERT_GT(optimal, 0.1);

    MinerConfig cfg;
    cfg.max_depth = 1;
    cfg.sdad_max_level = 6;
    auto result = Miner(cfg).Mine(*db, GroupsRequest(*gi));
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->contrasts.empty()) << "seed " << seed;
    double found = result->contrasts.front().diff;
    EXPECT_GE(found, 0.5 * optimal)
        << "seed " << seed << ": found " << found << " vs optimal "
        << optimal;

    // Location check: some top-3 pattern overlaps the planted band.
    bool overlaps = false;
    size_t check = std::min<size_t>(3, result->contrasts.size());
    for (size_t i = 0; i < check; ++i) {
      const core::Item& it = result->contrasts[i].itemset.item(0);
      double inter = std::min(it.hi, band_hi) - std::max(it.lo, band_lo);
      if (inter > 0.3 * (band_hi - band_lo)) overlaps = true;
    }
    EXPECT_TRUE(overlaps) << "seed " << seed;
  }
}

// Byte-exact rendering of a mined result: itemset, exact counts and the
// full-precision stats of every pattern, in rank order.
std::string RenderResult(const std::vector<ContrastPattern>& patterns) {
  std::string out;
  char buf[512];
  for (const ContrastPattern& p : patterns) {
    out += p.itemset.Key();
    for (double c : p.counts) {
      std::snprintf(buf, sizeof(buf), " %.17g", c);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), " | diff=%.17g measure=%.17g chi2=%.17g p=%.17g\n",
                  p.diff, p.measure, p.chi2, p.p_value);
    out += buf;
  }
  return out;
}

TEST(DifferentialTest, ColumnarKernelsMatchNaivePathExactly) {
  // The fused split+count kernel must be a pure optimization: with
  // columnar_kernels flipped off, the miner walks the seed's naive
  // FindCombs + per-cell CountGroups path, and the mined output must be
  // byte-identical on every dataset — same patterns, same order, same
  // counts and statistics to the last bit.
  for (const std::string& name :
       {std::string("adult"), std::string("breast"),
        std::string("transfusion"), std::string("shuttle")}) {
    synth::NamedDataset nd = synth::MakeUciLike(name, /*seed=*/7);
    auto attr = nd.db.schema().IndexOf(nd.group_attr);
    ASSERT_TRUE(attr.ok());
    auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
    ASSERT_TRUE(gi.ok());

    MinerConfig cfg;
    cfg.max_depth = 2;
    cfg.top_k = 50;

    cfg.columnar_kernels = true;
    auto fused = Miner(cfg).Mine(nd.db, GroupsRequest(*gi));
    ASSERT_TRUE(fused.ok());

    cfg.columnar_kernels = false;
    auto naive = Miner(cfg).Mine(nd.db, GroupsRequest(*gi));
    ASSERT_TRUE(naive.ok());

    EXPECT_EQ(RenderResult(fused->contrasts), RenderResult(naive->contrasts))
        << "dataset " << name;
    EXPECT_EQ(fused->counters.partitions_evaluated,
              naive->counters.partitions_evaluated)
        << "dataset " << name;
  }
}

TEST(DifferentialTest, ScalarAndVectorizedKernelsMatchExactly) {
  // KernelKind is a pure speed knob: the AVX2 kernel vectorizes only the
  // interval comparisons (with ordered predicates that reject NaN like
  // the scalar test) and commits surviving rows with identical scalar
  // arithmetic, so the mined output must be byte-identical. On hosts
  // without AVX2, kAvx2 resolves to the scalar kernel and the comparison
  // is trivially (but still correctly) equal.
  for (const std::string& name :
       {std::string("adult"), std::string("breast"),
        std::string("transfusion"), std::string("shuttle")}) {
    synth::NamedDataset nd = synth::MakeUciLike(name, /*seed=*/7);
    auto attr = nd.db.schema().IndexOf(nd.group_attr);
    ASSERT_TRUE(attr.ok());
    auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
    ASSERT_TRUE(gi.ok());

    MinerConfig cfg;
    cfg.max_depth = 2;
    cfg.top_k = 50;

    cfg.kernel = core::KernelKind::kScalar;
    auto scalar = Miner(cfg).Mine(nd.db, GroupsRequest(*gi));
    ASSERT_TRUE(scalar.ok());

    cfg.kernel = core::KernelKind::kAvx2;
    auto vectorized = Miner(cfg).Mine(nd.db, GroupsRequest(*gi));
    ASSERT_TRUE(vectorized.ok());

    EXPECT_EQ(RenderResult(scalar->contrasts),
              RenderResult(vectorized->contrasts))
        << "dataset " << name;
    EXPECT_EQ(scalar->counters.partitions_evaluated,
              vectorized->counters.partitions_evaluated)
        << "dataset " << name;
  }
}

TEST(DifferentialTest, SampleSeededBoundsNeverChangeResults) {
  // Sample-seeded bounds raise the top-k pruning floor from node one;
  // the a-posteriori guard re-runs unseeded whenever the floor could
  // have cost a result. Net effect: identical patterns, only node
  // counts may drop. Both runs are deterministic (fixed sample seed),
  // so this equality is stable, not flaky.
  for (const std::string& name :
       {std::string("adult"), std::string("breast"),
        std::string("transfusion"), std::string("shuttle")}) {
    synth::NamedDataset nd = synth::MakeUciLike(name, /*seed=*/7);
    auto attr = nd.db.schema().IndexOf(nd.group_attr);
    ASSERT_TRUE(attr.ok());
    auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
    ASSERT_TRUE(gi.ok());

    MinerConfig cfg;
    cfg.max_depth = 2;
    cfg.top_k = 50;

    auto unseeded = Miner(cfg).Mine(nd.db, GroupsRequest(*gi));
    ASSERT_TRUE(unseeded.ok());

    cfg.seed_sample_rows = 200;
    auto seeded = Miner(cfg).Mine(nd.db, GroupsRequest(*gi));
    ASSERT_TRUE(seeded.ok());

    EXPECT_EQ(RenderResult(unseeded->contrasts),
              RenderResult(seeded->contrasts))
        << "dataset " << name;
    // Seeding never does extra main-run work: either the floor held and
    // pruning removed nodes, or the guard forced an unseeded re-run
    // whose counts match the pre-pass-free run exactly.
    EXPECT_LE(seeded->counters.partitions_evaluated,
              unseeded->counters.partitions_evaluated)
        << "dataset " << name;
  }
}

TEST(DifferentialTest, AnytimeStreamingMatchesNonAnytimeRun) {
  // --anytime semantics: snapshots are monotonically improving previews
  // delivered through the progress callback, and the exhaustive result
  // is unchanged by streaming them.
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/7);
  auto attr = nd.db.schema().IndexOf(nd.group_attr);
  ASSERT_TRUE(attr.ok());
  auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
  ASSERT_TRUE(gi.ok());

  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.top_k = 50;

  auto plain = Miner(cfg).Mine(nd.db, GroupsRequest(*gi));
  ASSERT_TRUE(plain.ok());

  size_t snapshots = 0;
  double last_best = 0.0;
  core::MineRequest request = GroupsRequest(*gi);
  request.run_control.set_anytime(true);
  request.run_control.set_progress_callback(
      [&](const util::RunProgress& p) {
        EXPECT_GE(p.best_measure, last_best);
        last_best = p.best_measure;
        if (p.payload == nullptr) return;
        ++snapshots;
        auto* snap =
            dynamic_cast<const core::AnytimeSnapshot*>(p.payload.get());
        ASSERT_NE(snap, nullptr);
        EXPECT_FALSE(snap->patterns.empty());
        for (size_t i = 1; i < snap->patterns.size(); ++i) {
          EXPECT_GE(snap->patterns[i - 1].measure,
                    snap->patterns[i].measure);
        }
        EXPECT_EQ(snap->patterns.empty() ? 0.0
                                         : snap->patterns.front().measure,
                  p.best_measure);
      });
  auto streamed = Miner(cfg).Mine(nd.db, request);
  ASSERT_TRUE(streamed.ok());
  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(RenderResult(plain->contrasts), RenderResult(streamed->contrasts));
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(DifferentialTest, SerialEngineByteIdenticalToPreRefactorBaseline) {
  // Golden hashes of the serial miner's byte-exact rendered output
  // (pattern keys, counts and full-precision statistics in rank order),
  // captured from the last commit BEFORE the engine-session refactor
  // with the identical RenderResult/Fnv1a code. The shared
  // prologue/epilogue must be a pure extraction: any drift in split
  // points, pruning, sorting or the post-filter changes these hashes.
  struct Golden {
    const char* name;
    size_t patterns;
    uint64_t hash;
  };
  const Golden kGolden[] = {
      {"adult", 21u, 0x40db30498c64e5d5ULL},
      {"breast", 27u, 0x3b481c9b1db9b66aULL},
      {"transfusion", 7u, 0xab3632eabc712362ULL},
      {"shuttle", 6u, 0x804b93759db9254cULL},
  };
  for (const Golden& golden : kGolden) {
    synth::NamedDataset nd = synth::MakeUciLike(golden.name, /*seed=*/7);
    auto attr = nd.db.schema().IndexOf(nd.group_attr);
    ASSERT_TRUE(attr.ok());
    auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
    ASSERT_TRUE(gi.ok());

    MinerConfig cfg;
    cfg.max_depth = 2;
    cfg.top_k = 50;
    auto result = Miner(cfg).Mine(nd.db, GroupsRequest(*gi));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->contrasts.size(), golden.patterns)
        << "dataset " << golden.name;
    EXPECT_EQ(Fnv1a(RenderResult(result->contrasts)), golden.hash)
        << "dataset " << golden.name
        << ": serial output drifted from the pre-refactor baseline";
  }
}

TEST(DifferentialTest, ShardedEngineByteIdenticalToSerialForEveryCount) {
  // The shard-merge engine's whole contract: the coordinator replays the
  // serial decision order and only the counting scans fan out, so for
  // EVERY shard count the rendered output must hit the same golden
  // hashes as the serial baseline — not "equivalent", byte-identical.
  // (Shards are ascending row ranges, so per-shard selections
  // concatenate into the globally sorted selection, and counts are
  // small-integer doubles whose shard sums are exact.) This is what
  // licenses keeping shard_count out of the request key.
  struct Golden {
    const char* name;
    size_t patterns;
    uint64_t hash;
  };
  const Golden kGolden[] = {
      {"adult", 21u, 0x40db30498c64e5d5ULL},
      {"breast", 27u, 0x3b481c9b1db9b66aULL},
      {"transfusion", 7u, 0xab3632eabc712362ULL},
      {"shuttle", 6u, 0x804b93759db9254cULL},
  };
  for (const Golden& golden : kGolden) {
    synth::NamedDataset nd = synth::MakeUciLike(golden.name, /*seed=*/7);
    auto attr = nd.db.schema().IndexOf(nd.group_attr);
    ASSERT_TRUE(attr.ok());
    auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
    ASSERT_TRUE(gi.ok());

    MinerConfig cfg;
    cfg.max_depth = 2;
    cfg.top_k = 50;
    for (size_t shards : {1u, 2u, 4u, 8u}) {
      // Through the registry's parameterized name — the exact path the
      // servers and CLI take, with no separate dispatch to drift.
      std::string spec = "sharded:" + std::to_string(shards);
      auto eng = engine::EngineRegistry::Global().Create(spec, cfg);
      ASSERT_TRUE(eng.ok()) << spec;
      auto result = (*eng)->Mine(nd.db, GroupsRequest(*gi));
      ASSERT_TRUE(result.ok()) << spec << " on " << golden.name;
      EXPECT_EQ(result->contrasts.size(), golden.patterns)
          << spec << " on " << golden.name;
      EXPECT_EQ(Fnv1a(RenderResult(result->contrasts)), golden.hash)
          << spec << " on " << golden.name
          << ": sharded output drifted from the serial baseline";
    }
  }
}

TEST(DifferentialTest, ChunkedStorageByteIdenticalToDenseForEveryGeometry) {
  // The chunked data layer's whole contract: chunk size is a storage
  // knob, never a semantic one. Kernels iterate chunk spans on every
  // backend, so for any chunk size — including the degenerate 1 (every
  // row its own chunk) and rows+1 (one short chunk, the dense path) —
  // the rendered output must hit the same golden hashes as the
  // pre-chunking baseline, on the serial AND the sharded engine (shard
  // boundaries deliberately misaligned with chunk seams). Both backends
  // are exercised: resident columns re-sliced in place, and the same
  // data spilled to a columnar temp file and mined mmap-backed.
  struct Golden {
    const char* name;
    size_t patterns;
    uint64_t hash;
  };
  const Golden kGolden[] = {
      {"adult", 21u, 0x40db30498c64e5d5ULL},
      {"breast", 27u, 0x3b481c9b1db9b66aULL},
      {"transfusion", 7u, 0xab3632eabc712362ULL},
      {"shuttle", 6u, 0x804b93759db9254cULL},
  };
  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.top_k = 50;
  for (const Golden& golden : kGolden) {
    synth::NamedDataset nd = synth::MakeUciLike(golden.name, /*seed=*/7);
    std::string spill_path = testing::TempDir() + "differential_" +
                             golden.name + ".spill";
    ASSERT_TRUE(data::WriteSpill(nd.db, spill_path).ok());
    const size_t rows = nd.db.num_rows();
    for (size_t chunk_rows : {size_t{1}, size_t{7}, size_t{4096}, rows + 1}) {
      // Chunk size 1 on the full cross product is O(rows) pins per scan;
      // keep it to the two smallest datasets so the suite stays fast.
      if (chunk_rows == 1 && rows > 1000) continue;
      for (const char* engine : {"serial", "sharded:3"}) {
        // Resident backend: the same column vectors, re-sliced.
        nd.db.SetChunkRows(chunk_rows);
        auto attr = nd.db.schema().IndexOf(nd.group_attr);
        ASSERT_TRUE(attr.ok());
        auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
        ASSERT_TRUE(gi.ok());
        auto eng = engine::EngineRegistry::Global().Create(engine, cfg);
        ASSERT_TRUE(eng.ok());
        auto resident = (*eng)->Mine(nd.db, GroupsRequest(*gi));
        ASSERT_TRUE(resident.ok());
        EXPECT_EQ(resident->contrasts.size(), golden.patterns)
            << golden.name << " resident chunk_rows=" << chunk_rows
            << " engine=" << engine;
        EXPECT_EQ(Fnv1a(RenderResult(resident->contrasts)), golden.hash)
            << golden.name << " resident chunk_rows=" << chunk_rows
            << " engine=" << engine
            << ": chunked output drifted from the dense baseline";

        // Paged backend: mmap-backed chunks materialized on demand.
        data::SpillOptions sopt;
        sopt.chunk_rows = chunk_rows;
        auto paged = data::OpenSpill(spill_path, sopt);
        ASSERT_TRUE(paged.ok()) << paged.status().ToString();
        auto pattr = paged->schema().IndexOf(nd.group_attr);
        ASSERT_TRUE(pattr.ok());
        auto pgi = data::GroupInfo::CreateForValues(*paged, *pattr,
                                                    nd.groups);
        ASSERT_TRUE(pgi.ok());
        auto mined = (*eng)->Mine(*paged, GroupsRequest(*pgi));
        ASSERT_TRUE(mined.ok());
        EXPECT_EQ(Fnv1a(RenderResult(mined->contrasts)), golden.hash)
            << golden.name << " paged chunk_rows=" << chunk_rows
            << " engine=" << engine
            << ": mmap-backed output drifted from the dense baseline";
      }
    }
    nd.db.SetChunkRows(0);
    std::remove(spill_path.c_str());
  }
}

TEST(DifferentialTest, CappedResidencyMineCompletesUnderDenseFootprint) {
  // The acceptance check of the paged backend: a mine whose chunk byte
  // cap is far below the dense column footprint still completes with
  // byte-identical output, actually pages (nonzero chunk loads and
  // evictions), and — because loads evict cold chunks first — residency
  // never exceeds the cap while the pinned working set fits.
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/7);
  auto attr = nd.db.schema().IndexOf(nd.group_attr);
  ASSERT_TRUE(attr.ok());
  auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
  ASSERT_TRUE(gi.ok());

  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.top_k = 50;
  auto dense = Miner(cfg).Mine(nd.db, GroupsRequest(*gi));
  ASSERT_TRUE(dense.ok());

  std::string spill_path = testing::TempDir() + "differential_capped.spill";
  ASSERT_TRUE(data::WriteSpill(nd.db, spill_path).ok());
  const size_t column_bytes = nd.db.MemoryUsage();
  data::SpillOptions sopt;
  sopt.chunk_rows = nd.db.num_rows() / 16 + 1;
  sopt.max_resident_bytes = column_bytes / 4;
  auto paged = data::OpenSpill(spill_path, sopt);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  std::remove(spill_path.c_str());  // the mapping keeps the file alive

  auto pattr = paged->schema().IndexOf(nd.group_attr);
  ASSERT_TRUE(pattr.ok());
  auto pgi = data::GroupInfo::CreateForValues(*paged, *pattr, nd.groups);
  ASSERT_TRUE(pgi.ok());
  auto capped = Miner(cfg).Mine(*paged, GroupsRequest(*pgi));
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(RenderResult(capped->contrasts), RenderResult(dense->contrasts));

  data::ChunkStats cs = paged->chunk_store()->stats();
  EXPECT_EQ(cs.max_resident_bytes, sopt.max_resident_bytes);
  EXPECT_GT(cs.loads, 0u);
  EXPECT_GT(cs.evictions, 0u);
  EXPECT_LE(cs.resident_bytes, sopt.max_resident_bytes);
  EXPECT_LE(cs.peak_resident_bytes, sopt.max_resident_bytes)
      << "evict-before-load overshot the cap: the pinned working set of "
         "a serial mine is a handful of chunks and must fit";
}

TEST(DifferentialTest, PreparedPathByteIdenticalToBaseline) {
  // The prepared-artifact warm path — rank-based medians, precomputed
  // root bounds, the cached group artifact — must be a pure
  // optimization: mining through a PreparedDataset hits the same golden
  // hashes as the cold serial baseline above. Rank order refines value
  // order, so the selection median chosen through ranks is the
  // bit-identical double either way.
  struct Golden {
    const char* name;
    size_t patterns;
    uint64_t hash;
  };
  const Golden kGolden[] = {
      {"adult", 21u, 0x40db30498c64e5d5ULL},
      {"breast", 27u, 0x3b481c9b1db9b66aULL},
      {"transfusion", 7u, 0xab3632eabc712362ULL},
      {"shuttle", 6u, 0x804b93759db9254cULL},
  };
  for (const Golden& golden : kGolden) {
    synth::NamedDataset nd = synth::MakeUciLike(golden.name, /*seed=*/7);
    data::PreparedDataset prepared(&nd.db);

    MinerConfig cfg;
    cfg.max_depth = 2;
    cfg.top_k = 50;
    core::MineRequest request;
    request.group_attr = nd.group_attr;
    request.group_values = nd.groups;
    request.prepared = &prepared;
    // Twice: the first run builds the artifacts, the second reuses them;
    // both must match the golden output.
    for (int round = 0; round < 2; ++round) {
      auto result = Miner(cfg).Mine(nd.db, request);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->contrasts.size(), golden.patterns)
          << "dataset " << golden.name << " round " << round;
      EXPECT_EQ(Fnv1a(RenderResult(result->contrasts)), golden.hash)
          << "dataset " << golden.name << " round " << round
          << ": prepared-path output drifted from the baseline";
    }
    data::PreparedStats stats = prepared.stats();
    EXPECT_GT(stats.sort_builds, 0u) << golden.name;
    EXPECT_EQ(stats.group_builds, 1u) << golden.name;
    EXPECT_GT(stats.hits, 0u) << golden.name;
  }
}

TEST(DifferentialTest, EveryRegistryEngineReturnsWellFormedResults) {
  // Every engine the registry can construct must honour the shared
  // epilogue contract on real mixed data: an OK result, completion
  // kComplete under no limits, group names filled in, and a pattern
  // list in the canonical measure-descending order (SortByMeasureDesc
  // is a total order, so sortedness is exact, not approximate).
  for (const std::string& name :
       {std::string("adult"), std::string("breast")}) {
    synth::NamedDataset nd = synth::MakeUciLike(name, /*seed=*/7);
    auto attr = nd.db.schema().IndexOf(nd.group_attr);
    ASSERT_TRUE(attr.ok());
    auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
    ASSERT_TRUE(gi.ok());

    MinerConfig cfg;
    cfg.max_depth = 2;
    cfg.top_k = 50;
    engine::EngineOptions opts;
    opts.parallel_threads = 2;
    opts.window_rows = 0;  // window engine: whole dataset

    for (const auto& entry : engine::EngineRegistry::Global().entries()) {
      auto eng = engine::EngineRegistry::Global().Create(entry.name, cfg,
                                                         opts);
      ASSERT_TRUE(eng.ok()) << entry.name;
      auto result = (*eng)->Mine(nd.db, GroupsRequest(*gi));
      ASSERT_TRUE(result.ok())
          << entry.name << " on " << name << ": "
          << result.status().ToString();
      EXPECT_EQ(result->completion, core::Completion::kComplete)
          << entry.name << " on " << name;
      EXPECT_EQ(result->group_names.size(),
                static_cast<size_t>(gi->num_groups()))
          << entry.name << " on " << name;

      std::vector<ContrastPattern> sorted = result->contrasts;
      core::SortByMeasureDesc(&sorted);
      EXPECT_EQ(RenderResult(result->contrasts), RenderResult(sorted))
          << entry.name << " on " << name
          << ": result list is not in canonical sorted order";

      // Meaningfulness: the epilogue already ran the independently-
      // productive post-filter, so re-applying it must be a fixed point
      // (the predicate is per-pattern and deterministic).
      auto session =
          engine::MiningSession::Begin(nd.db, cfg, GroupsRequest(*gi));
      ASSERT_TRUE(session.ok());
      core::MiningCounters counters;
      core::MiningContext ctx =
          session->MakeContext(nullptr, nullptr, &counters);
      std::vector<ContrastPattern> refiltered =
          core::FilterIndependentlyProductive(ctx, result->contrasts);
      EXPECT_EQ(RenderResult(refiltered), RenderResult(result->contrasts))
          << entry.name << " on " << name
          << ": result list is not meaningfulness-filtered";
    }
  }
}

TEST(DifferentialTest, CsvRoundTripFuzz) {
  // Random categorical tokens with commas, quotes and whitespace must
  // survive a write/read cycle byte-for-byte.
  util::Rng rng(99);
  const std::string kAlphabet = "ab,\" x\t#;'\\";
  for (int trial = 0; trial < 10; ++trial) {
    data::DatasetBuilder b;
    int c = b.AddCategorical("tokens");
    int n = b.AddContinuous("num");
    std::vector<std::string> originals;
    for (int i = 0; i < 40; ++i) {
      std::string token;
      size_t len = 1 + rng.NextBelow(10);
      for (size_t k = 0; k < len; ++k) {
        token += kAlphabet[rng.NextBelow(kAlphabet.size())];
      }
      originals.push_back(token);
      b.AppendCategorical(c, token);
      b.AppendContinuous(n, rng.Uniform(-5.0, 5.0));
    }
    auto db = std::move(b).Build();
    ASSERT_TRUE(db.ok());
    auto round = data::ReadCsvString(data::WriteCsvString(*db));
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    ASSERT_EQ(round->num_rows(), 40u);
    const auto& col = round->categorical(0);
    for (uint32_t r = 0; r < 40; ++r) {
      EXPECT_EQ(col.ValueOf(col.code(r)), originals[r])
          << "trial " << trial << " row " << r;
    }
  }
}

}  // namespace
}  // namespace sdadcs
