#include "stream/window_miner.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace sdadcs::stream {
namespace {

StreamConfig SmallConfig() {
  StreamConfig cfg;
  cfg.window_rows = 600;
  cfg.stride = 300;
  cfg.min_rows = 300;
  cfg.miner.max_depth = 1;
  return cfg;
}

std::vector<data::Attribute> TwoColumnSchema() {
  return {{"g", data::AttributeType::kCategorical},
          {"x", data::AttributeType::kContinuous}};
}

TEST(WindowMinerTest, RejectsWrongRowWidth) {
  WindowMiner miner(SmallConfig(), TwoColumnSchema(), "g");
  auto st = miner.Append({StreamValue::Category("a")});
  EXPECT_FALSE(st.ok());
}

TEST(WindowMinerTest, RejectsTypeMismatch) {
  WindowMiner miner(SmallConfig(), TwoColumnSchema(), "g");
  auto st = miner.Append(
      {StreamValue::Number(1.0), StreamValue::Number(1.0)});
  EXPECT_FALSE(st.ok());
  auto st2 = miner.Append(
      {StreamValue::Category("a"), StreamValue::Category("oops")});
  EXPECT_FALSE(st2.ok());
}

TEST(WindowMinerTest, NoPassBeforeMinRows) {
  WindowMiner miner(SmallConfig(), TwoColumnSchema(), "g");
  util::Rng rng(1);
  for (int i = 0; i < 299; ++i) {
    auto delta = miner.Append({StreamValue::Category(i % 2 ? "a" : "b"),
                               StreamValue::Number(rng.NextDouble())});
    ASSERT_TRUE(delta.ok());
    EXPECT_FALSE(delta->has_value()) << "row " << i;
  }
  EXPECT_EQ(miner.rows_seen(), 299u);
}

TEST(WindowMinerTest, WindowCapacityEnforced) {
  StreamConfig cfg = SmallConfig();
  cfg.window_rows = 100;
  cfg.min_rows = 1000000;  // never mine
  WindowMiner miner(cfg, TwoColumnSchema(), "g");
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(miner
                    .Append({StreamValue::Category("a"),
                             StreamValue::Number(i)})
                    .ok());
  }
  EXPECT_EQ(miner.window_size(), 100u);
  EXPECT_EQ(miner.rows_seen(), 250u);
}

TEST(WindowMinerTest, SingleGroupWindowSkipsPass) {
  WindowMiner miner(SmallConfig(), TwoColumnSchema(), "g");
  util::Rng rng(2);
  bool any_delta = false;
  for (int i = 0; i < 700; ++i) {
    auto delta = miner.Append({StreamValue::Category("only"),
                               StreamValue::Number(rng.NextDouble())});
    ASSERT_TRUE(delta.ok());
    if (delta->has_value()) any_delta = true;
  }
  EXPECT_FALSE(any_delta);
}

// Streams a regime where group "bad" sits above `threshold` on x; after
// `drift_at` rows the threshold moves.
TEST(WindowMinerTest, DetectsRegimeDrift) {
  StreamConfig cfg = SmallConfig();
  WindowMiner miner(cfg, TwoColumnSchema(), "g");
  util::Rng rng(3);

  std::vector<PatternDelta> deltas;
  auto feed = [&](int rows, double threshold) {
    for (int i = 0; i < rows; ++i) {
      double x = rng.Uniform(0.0, 10.0);
      const char* g = x > threshold ? "bad" : "good";
      auto delta =
          miner.Append({StreamValue::Category(g), StreamValue::Number(x)});
      ASSERT_TRUE(delta.ok());
      if (delta->has_value()) deltas.push_back(**delta);
    }
  };

  feed(900, 8.0);   // regime 1: boundary at 8
  size_t regime1_deltas = deltas.size();
  ASSERT_GT(regime1_deltas, 0u);
  // First pass: everything is new.
  EXPECT_FALSE(deltas.front().appeared.empty());
  EXPECT_TRUE(deltas.front().disappeared.empty());

  feed(1200, 2.0);  // regime 2: boundary jumps to 2
  ASSERT_GT(deltas.size(), regime1_deltas);
  // Some pass after the drift must report change.
  bool drift_reported = false;
  for (size_t i = regime1_deltas; i < deltas.size(); ++i) {
    if (deltas[i].drifted()) drift_reported = true;
  }
  EXPECT_TRUE(drift_reported);
  EXPECT_FALSE(miner.current_patterns().empty());
}

TEST(WindowMinerTest, StablePatternsPersistAcrossPasses) {
  StreamConfig cfg = SmallConfig();
  cfg.stride = 200;
  WindowMiner miner(cfg, TwoColumnSchema(), "g");
  util::Rng rng(4);
  std::vector<PatternDelta> deltas;
  for (int i = 0; i < 1500; ++i) {
    double x = rng.Uniform(0.0, 10.0);
    const char* g = x > 5.0 ? "bad" : "good";
    auto delta =
        miner.Append({StreamValue::Category(g), StreamValue::Number(x)});
    ASSERT_TRUE(delta.ok());
    if (delta->has_value()) deltas.push_back(**delta);
  }
  ASSERT_GE(deltas.size(), 3u);
  // After the first pass, the stable boundary should mostly persist.
  size_t persisted_passes = 0;
  for (size_t i = 1; i < deltas.size(); ++i) {
    if (!deltas[i].persisted.empty()) ++persisted_passes;
  }
  EXPECT_GE(persisted_passes, deltas.size() - 2);
}

TEST(WindowMinerTest, InvalidMinerConfigRejectedByAppend) {
  StreamConfig cfg = SmallConfig();
  cfg.miner.alpha = -1.0;
  WindowMiner miner(cfg, TwoColumnSchema(), "g");
  auto st = miner.Append(
      {StreamValue::Category("a"), StreamValue::Number(1.0)});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().ToString().find("alpha"), std::string::npos);
}

TEST(WindowMinerTest, CancelledControlYieldsPartialPasses) {
  StreamConfig cfg = SmallConfig();
  cfg.run_control.Cancel();
  WindowMiner miner(cfg, TwoColumnSchema(), "g");
  util::Rng rng(6);
  std::vector<PatternDelta> deltas;
  for (int i = 0; i < 700; ++i) {
    double x = rng.Uniform(0.0, 10.0);
    const char* g = x > 5.0 ? "bad" : "good";
    auto delta =
        miner.Append({StreamValue::Category(g), StreamValue::Number(x)});
    ASSERT_TRUE(delta.ok());
    if (delta->has_value()) deltas.push_back(**delta);
  }
  ASSERT_FALSE(deltas.empty());
  for (const PatternDelta& d : deltas) {
    EXPECT_EQ(d.completion, core::Completion::kCancelled);
    // A partial pass cannot classify disappearances and must not move
    // the diff baseline.
    EXPECT_TRUE(d.disappeared.empty());
  }
  EXPECT_TRUE(miner.current_patterns().empty());
}

TEST(WindowMinerTest, MissingValuesStreamThrough) {
  WindowMiner miner(SmallConfig(), TwoColumnSchema(), "g");
  util::Rng rng(5);
  for (int i = 0; i < 700; ++i) {
    StreamValue x = rng.Bernoulli(0.1)
                        ? StreamValue::Missing()
                        : StreamValue::Number(rng.Uniform(0.0, 10.0));
    const char* g =
        (x.kind == StreamValue::Kind::kNumber && x.number > 7.0) ? "bad"
                                                                 : "good";
    ASSERT_TRUE(miner.Append({StreamValue::Category(g), x}).ok());
  }
  SUCCEED();
}

}  // namespace
}  // namespace sdadcs::stream
