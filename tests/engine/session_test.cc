// MiningSession::Begin error paths: every way a request can be
// malformed comes back as InvalidArgument naming the offending field —
// on the per-call resolution path and on the prepared-artifact path
// alike.

#include "engine/session.h"

#include <string>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/miner.h"
#include "data/prepared.h"
#include "synth/uci_like.h"
#include "util/status.h"

namespace sdadcs::engine {
namespace {

bool MentionsField(const util::Status& status, const std::string& field) {
  return status.ToString().find(field) != std::string::npos;
}

TEST(MiningSessionTest, GroupAttributeInUniverseIsInvalidArgument) {
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/3);
  core::MinerConfig config;
  config.attributes = {nd.group_attr};
  core::MineRequest request;
  request.group_attr = nd.group_attr;

  auto session = MiningSession::Begin(nd.db, config, request);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(MentionsField(session.status(), "attributes"))
      << session.status().ToString();
}

TEST(MiningSessionTest, UnknownGroupValueIsInvalidArgument) {
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/3);
  core::MinerConfig config;
  core::MineRequest request;
  request.group_attr = nd.group_attr;
  request.group_values = {nd.groups[0], "no-such-value"};

  auto session = MiningSession::Begin(nd.db, config, request);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(MentionsField(session.status(), "group_values"))
      << session.status().ToString();

  // Same classification when the groups resolve through a prepared
  // bundle (which reports one flat data-layer status internally).
  data::PreparedDataset prepared(&nd.db);
  request.prepared = &prepared;
  auto warm = MiningSession::Begin(nd.db, config, request);
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(warm.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(MentionsField(warm.status(), "group_values"))
      << warm.status().ToString();
}

TEST(MiningSessionTest, UnknownGroupAttributeIsInvalidArgument) {
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/3);
  core::MinerConfig config;
  core::MineRequest request;
  request.group_attr = "no-such-attribute";

  auto session = MiningSession::Begin(nd.db, config, request);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(MentionsField(session.status(), "group_attr"))
      << session.status().ToString();

  data::PreparedDataset prepared(&nd.db);
  request.prepared = &prepared;
  auto warm = MiningSession::Begin(nd.db, config, request);
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(warm.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(MentionsField(warm.status(), "group_attr"))
      << warm.status().ToString();
}

TEST(MiningSessionTest, EmptyUniverseIsInvalidArgument) {
  // A dataset holding only the group attribute leaves nothing to mine.
  data::DatasetBuilder b;
  int g = b.AddCategorical("label");
  for (int i = 0; i < 10; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "yes" : "no");
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());

  core::MinerConfig config;
  core::MineRequest request;
  request.group_attr = "label";
  auto session = MiningSession::Begin(*db, config, request);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(MentionsField(session.status(), "attributes"))
      << session.status().ToString();
}

TEST(MiningSessionTest, PreparedBeginMatchesColdBegin) {
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/3);
  core::MinerConfig config;
  core::MineRequest request;
  request.group_attr = nd.group_attr;
  request.group_values = nd.groups;

  auto cold = MiningSession::Begin(nd.db, config, request);
  ASSERT_TRUE(cold.ok());

  data::PreparedDataset prepared(&nd.db);
  request.prepared = &prepared;
  auto warm = MiningSession::Begin(nd.db, config, request);
  ASSERT_TRUE(warm.ok());

  EXPECT_EQ(warm->attributes(), cold->attributes());
  EXPECT_EQ(warm->group_sizes(), cold->group_sizes());
  ASSERT_EQ(warm->root_bounds().size(), cold->root_bounds().size());
  for (const auto& [attr, bounds] : cold->root_bounds()) {
    auto it = warm->root_bounds().find(attr);
    ASSERT_NE(it, warm->root_bounds().end());
    EXPECT_EQ(it->second.lo, bounds.lo);
    EXPECT_EQ(it->second.hi, bounds.hi);
  }
  // The second warm Begin reuses the cached group artifact.
  auto again = MiningSession::Begin(nd.db, config, request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(prepared.stats().group_builds, 1u);
  EXPECT_GT(prepared.stats().hits, 0u);
}

}  // namespace
}  // namespace sdadcs::engine
