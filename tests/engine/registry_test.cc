// Tests of the engine layer: registry lookup, name/kind round-trips and
// the uniform Engine contract across every registered engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/requests.h"
#include "core/request_key.h"
#include "data/dataset.h"
#include "data/group_info.h"
#include "engine/registry.h"
#include "util/random.h"

namespace sdadcs {
namespace {

using core::EngineKind;
using core::EngineKindFromString;
using core::EngineKindToString;
using core::MinerConfig;
using engine::EngineOptions;
using engine::EngineRegistry;

using test_support::GroupsRequest;

// A small mixed dataset with an unmistakable planted contrast: group
// "a" concentrates in x <= 50 and carries tag "t0".
data::Dataset MakeTinyDataset() {
  util::Rng rng(42);
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  int t = b.AddCategorical("tag");
  for (int i = 0; i < 400; ++i) {
    double v = rng.Uniform(0.0, 100.0);
    bool lo = v <= 50.0;
    bool a = lo ? rng.Bernoulli(0.9) : rng.Bernoulli(0.1);
    b.AppendCategorical(g, a ? "a" : "b");
    b.AppendContinuous(x, v);
    b.AppendCategorical(t, a ? "t0" : "t1");
  }
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

TEST(EngineRegistryTest, RegistersEveryDocumentedName) {
  const std::vector<std::string> expected = {
      "serial",         "parallel",          "beam",
      "binned:fayyad",  "binned:mvd",        "binned:srikant",
      "binned:equal_width", "binned:equal_freq", "window",
      "sharded"};
  std::vector<std::string> names = EngineRegistry::Global().Names();
  std::sort(names.begin(), names.end());
  std::vector<std::string> want = expected;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(names, want);
  for (const std::string& name : expected) {
    EXPECT_TRUE(EngineRegistry::Global().Has(name)) << name;
  }
  EXPECT_FALSE(EngineRegistry::Global().Has("auto"));
}

TEST(EngineRegistryTest, EngineKindRoundTripsForEveryRegistryName) {
  // Every registry name maps to a distinct EngineKind and both string
  // conversions invert each other; "auto" round-trips too even though
  // the registry itself does not hold it.
  std::set<EngineKind> kinds;
  for (const auto& entry : EngineRegistry::Global().entries()) {
    EXPECT_EQ(EngineKindToString(entry.kind), entry.name);
    auto parsed = EngineKindFromString(entry.name);
    ASSERT_TRUE(parsed.ok()) << entry.name;
    EXPECT_EQ(*parsed, entry.kind) << entry.name;
    EXPECT_TRUE(kinds.insert(entry.kind).second)
        << "duplicate kind for " << entry.name;
  }
  auto auto_kind = EngineKindFromString("auto");
  ASSERT_TRUE(auto_kind.ok());
  EXPECT_EQ(*auto_kind, EngineKind::kAuto);
  EXPECT_EQ(kinds.count(EngineKind::kAuto), 0u);
}

TEST(EngineRegistryTest, ShardedNameParsesWithOptionalCount) {
  // Bare "sharded" is a plain kind; "sharded:<n>" carries the count.
  auto bare = core::EngineSpecFromString("sharded");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->kind, EngineKind::kSharded);
  EXPECT_EQ(bare->shard_count, 0u);

  auto counted = core::EngineSpecFromString("sharded:4");
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->kind, EngineKind::kSharded);
  EXPECT_EQ(counted->shard_count, 4u);

  // Every plain registry name parses as a spec with no count.
  for (const auto& entry : EngineRegistry::Global().entries()) {
    auto spec = core::EngineSpecFromString(entry.name);
    ASSERT_TRUE(spec.ok()) << entry.name;
    EXPECT_EQ(spec->kind, entry.kind) << entry.name;
    EXPECT_EQ(spec->shard_count, 0u) << entry.name;
  }

  for (const char* bad : {"sharded:", "sharded:0", "sharded:x",
                          "sharded:-1", "sharded:4x", "shard:4"}) {
    auto spec = core::EngineSpecFromString(bad);
    EXPECT_FALSE(spec.ok()) << bad;
    EXPECT_EQ(spec.status().code(), util::StatusCode::kInvalidArgument)
        << bad;
  }
}

TEST(EngineRegistryTest, ParameterizedShardedNameCreatesEngine) {
  EXPECT_TRUE(EngineRegistry::Global().Has("sharded:4"));
  EXPECT_FALSE(EngineRegistry::Global().Has("sharded:0"));
  EXPECT_FALSE(EngineRegistry::Global().Has("auto"));

  auto eng = EngineRegistry::Global().Create("sharded:4", MinerConfig());
  ASSERT_TRUE(eng.ok()) << eng.status().ToString();
  EXPECT_EQ((*eng)->Name(), "sharded");
  EXPECT_NE((*eng)->Describe().find("4 row shards"), std::string::npos)
      << (*eng)->Describe();

  // An explicit shard_count in the options reaches the bare name too.
  EngineOptions opts;
  opts.shard_count = 2;
  auto bare = EngineRegistry::Global().Create("sharded", MinerConfig(), opts);
  ASSERT_TRUE(bare.ok());
  EXPECT_NE((*bare)->Describe().find("2 row shards"), std::string::npos)
      << (*bare)->Describe();
}

TEST(EngineRegistryTest, UnknownNameIsInvalidArgumentListingEveryName) {
  auto parsed = EngineKindFromString("warp");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("warp"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("binned:mvd"),
            std::string::npos);

  auto created = EngineRegistry::Global().Create("warp", MinerConfig());
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(created.status().message().find("warp"), std::string::npos);
}

TEST(EngineRegistryTest, CreateByKindMatchesCreateByName) {
  MinerConfig cfg;
  for (const auto& entry : EngineRegistry::Global().entries()) {
    auto by_name = EngineRegistry::Global().Create(entry.name, cfg);
    auto by_kind = EngineRegistry::Global().Create(entry.kind, cfg);
    ASSERT_TRUE(by_name.ok()) << entry.name;
    ASSERT_TRUE(by_kind.ok()) << entry.name;
    EXPECT_EQ((*by_name)->Name(), entry.name);
    EXPECT_EQ((*by_kind)->Name(), entry.name);
    EXPECT_FALSE((*by_name)->Describe().empty()) << entry.name;
  }
  auto rejected = EngineRegistry::Global().Create(EngineKind::kAuto, cfg);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(EngineRegistryTest, EveryEngineMinesTheSameRequest) {
  // The uniform contract: one dataset, one request, every engine. Each
  // must accept the request and complete; the lattice engines must also
  // find the planted contrast.
  data::Dataset db = MakeTinyDataset();
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());

  MinerConfig cfg;
  cfg.max_depth = 2;
  EngineOptions opts;
  opts.parallel_threads = 2;
  opts.window_rows = 0;

  for (const auto& entry : EngineRegistry::Global().entries()) {
    auto eng = EngineRegistry::Global().Create(entry.name, cfg, opts);
    ASSERT_TRUE(eng.ok()) << entry.name;
    auto result = (*eng)->Mine(db, GroupsRequest(*gi));
    ASSERT_TRUE(result.ok())
        << entry.name << ": " << result.status().ToString();
    EXPECT_EQ(result->completion, core::Completion::kComplete)
        << entry.name;
    EXPECT_EQ(result->group_names.size(), 2u) << entry.name;
    if (entry.kind == EngineKind::kSerial ||
        entry.kind == EngineKind::kParallel ||
        entry.kind == EngineKind::kWindow) {
      EXPECT_FALSE(result->contrasts.empty()) << entry.name;
    }
  }
}

TEST(EngineRegistryTest, EnginesRejectInvalidConfigAndRequest) {
  data::Dataset db = MakeTinyDataset();
  MinerConfig bad;
  bad.alpha = 2.0;
  for (const auto& entry : EngineRegistry::Global().entries()) {
    auto eng = EngineRegistry::Global().Create(entry.name, bad);
    ASSERT_TRUE(eng.ok()) << entry.name;  // construction is cheap & lazy
    auto result =
        (*eng)->Mine(db, test_support::GroupRequest("g"));
    EXPECT_FALSE(result.ok())
        << entry.name << " accepted alpha = 2.0";
  }

  for (const auto& entry : EngineRegistry::Global().entries()) {
    auto eng = EngineRegistry::Global().Create(entry.name, MinerConfig());
    ASSERT_TRUE(eng.ok()) << entry.name;
    auto result =
        (*eng)->Mine(db, test_support::GroupRequest("no_such_attr"));
    EXPECT_FALSE(result.ok())
        << entry.name << " accepted an unknown group attribute";
  }
}

TEST(EngineRegistryTest, WindowEngineMinesOnlyTheTail) {
  // First 300 rows: x <= 50 ⇒ "a". Last 300 rows: the correlation is
  // inverted. A window engine over the last 300 rows must find the
  // inverted pattern, proving it really restricted to the tail.
  util::Rng rng(7);
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 0; i < 600; ++i) {
    double v = rng.Uniform(0.0, 100.0);
    bool lo = v <= 50.0;
    bool head = i < 300;
    bool a = (head == lo) ? rng.Bernoulli(0.95) : rng.Bernoulli(0.05);
    b.AppendCategorical(g, a ? "a" : "b");
    b.AppendContinuous(x, v);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());

  MinerConfig cfg;
  cfg.max_depth = 1;
  EngineOptions opts;
  opts.window_rows = 300;
  auto eng = EngineRegistry::Global().Create("window", cfg, opts);
  ASSERT_TRUE(eng.ok());
  auto result =
      (*eng)->Mine(*db, test_support::GroupRequest("g"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->contrasts.empty());

  // In the tail the correlation is inverted: "a" lives in high x and
  // "b" in low x. Whichever group dominates the top pattern, its
  // interval must sit on the tail's side — the head's (or the full
  // dataset's washed-out mixture) would point the other way.
  ASSERT_EQ(result->group_names.size(), 2u);
  const core::ContrastPattern& top = result->contrasts.front();
  const core::Item& item = top.itemset.item(0);
  size_t heavy = top.counts[0] >= top.counts[1] ? 0 : 1;
  if (result->group_names[heavy] == "a") {
    EXPECT_GT(item.lo, 25.0) << "tail 'a' pattern should cover high x, got "
                             << top.itemset.Key();
  } else {
    EXPECT_LT(item.hi, 75.0) << "tail 'b' pattern should cover low x, got "
                             << top.itemset.Key();
  }
}

}  // namespace
}  // namespace sdadcs
