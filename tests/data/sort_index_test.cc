#include "data/sort_index.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sdadcs::data {
namespace {

Dataset MakeDb(const std::vector<double>& values) {
  DatasetBuilder b;
  int x = b.AddContinuous("x");
  for (double v : values) {
    if (std::isnan(v)) {
      b.AppendMissing(x);
    } else {
      b.AppendContinuous(x, v);
    }
  }
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(SortIndexTest, OrdersByValueSkippingMissing) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  Dataset db = MakeDb({3.0, kNan, 1.0, 2.0});
  SortIndex idx = SortIndex::Build(db, 0);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.row_at(0), 2u);
  EXPECT_EQ(idx.row_at(1), 3u);
  EXPECT_EQ(idx.row_at(2), 0u);
}

TEST(SortIndexTest, StableOnTies) {
  Dataset db = MakeDb({5.0, 5.0, 5.0});
  SortIndex idx = SortIndex::Build(db, 0);
  EXPECT_EQ(idx.row_at(0), 0u);
  EXPECT_EQ(idx.row_at(2), 2u);
}

TEST(MedianInSelectionTest, OddCount) {
  Dataset db = MakeDb({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(MedianInSelection(db, 0, Selection::All(3)), 3.0);
}

TEST(MedianInSelectionTest, EvenCountTakesLowerMiddle) {
  Dataset db = MakeDb({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(MedianInSelection(db, 0, Selection::All(4)), 2.0);
}

TEST(MedianInSelectionTest, RespectsSelection) {
  Dataset db = MakeDb({1.0, 100.0, 2.0, 200.0});
  Selection sel({1, 3});
  EXPECT_DOUBLE_EQ(MedianInSelection(db, 0, sel), 100.0);
}

TEST(MedianInSelectionTest, EmptyIsNan) {
  Dataset db = MakeDb({1.0});
  EXPECT_TRUE(std::isnan(MedianInSelection(db, 0, Selection())));
}

TEST(MedianInSelectionTest, SkipsMissing) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  Dataset db = MakeDb({kNan, 7.0, kNan});
  EXPECT_DOUBLE_EQ(MedianInSelection(db, 0, Selection::All(3)), 7.0);
}

TEST(QuantileInSelectionTest, Extremes) {
  Dataset db = MakeDb({10.0, 20.0, 30.0, 40.0});
  Selection all = Selection::All(4);
  EXPECT_DOUBLE_EQ(QuantileInSelection(db, 0, all, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(QuantileInSelection(db, 0, all, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(QuantileInSelection(db, 0, all, 0.5), 20.0);
}

TEST(MinMaxInSelectionTest, Basic) {
  Dataset db = MakeDb({3.0, -1.0, 8.0});
  MinMax mm = MinMaxInSelection(db, 0, Selection::All(3));
  EXPECT_DOUBLE_EQ(mm.min, -1.0);
  EXPECT_DOUBLE_EQ(mm.max, 8.0);
}

TEST(MinMaxInSelectionTest, EmptySelectionIsNan) {
  Dataset db = MakeDb({3.0});
  MinMax mm = MinMaxInSelection(db, 0, Selection());
  EXPECT_TRUE(std::isnan(mm.min));
  EXPECT_TRUE(std::isnan(mm.max));
}

}  // namespace
}  // namespace sdadcs::data
