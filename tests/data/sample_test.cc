#include "data/sample.h"

#include <set>

#include <gtest/gtest.h>

#include "util/logging.h"

namespace sdadcs::data {
namespace {

TEST(SampleSelectionTest, ExactSizeWithoutReplacement) {
  util::Rng rng(1);
  Selection all = Selection::All(1000);
  Selection s = SampleSelection(all, 100, rng);
  EXPECT_EQ(s.size(), 100u);
  std::set<uint32_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 100u);
  // Sorted output.
  for (size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
}

TEST(SampleSelectionTest, OversizedRequestReturnsAll) {
  util::Rng rng(2);
  Selection all = Selection::All(50);
  EXPECT_EQ(SampleSelection(all, 500, rng).size(), 50u);
  EXPECT_EQ(SampleSelection(all, 50, rng).size(), 50u);
}

TEST(SampleSelectionTest, RoughlyUniform) {
  util::Rng rng(3);
  Selection all = Selection::All(1000);
  std::vector<int> hits(1000, 0);
  for (int t = 0; t < 200; ++t) {
    for (uint32_t r : SampleSelection(all, 100, rng)) ++hits[r];
  }
  // Each row expected ~20 hits; no row should be wildly off.
  for (int h : hits) {
    EXPECT_GT(h, 2);
    EXPECT_LT(h, 60);
  }
}

GroupInfo MakeGroups() {
  DatasetBuilder b;
  int g = b.AddCategorical("g");
  for (int i = 0; i < 1000; ++i) {
    b.AppendCategorical(g, i % 10 == 0 ? "rare" : "common");
  }
  auto db = std::move(b).Build();
  SDADCS_CHECK(db.ok());
  // Leak-free static storage for the dataset backing the GroupInfo in
  // these tests.
  static Dataset* stored = nullptr;
  delete stored;
  stored = new Dataset(std::move(db).value());
  auto gi = GroupInfo::CreateForValues(*stored, 0, {"rare", "common"});
  SDADCS_CHECK(gi.ok());
  return std::move(gi).value();
}

TEST(SampleGroupsTest, PreservesProportions) {
  GroupInfo gi = MakeGroups();
  auto sampled = SampleGroups(gi, 200, 7);
  ASSERT_TRUE(sampled.ok());
  // 10% rare: expect ~20 of 200.
  EXPECT_NEAR(static_cast<double>(sampled->group_size(0)), 20.0, 1.0);
  EXPECT_NEAR(static_cast<double>(sampled->total()), 200.0, 2.0);
}

TEST(SampleGroupsTest, EveryGroupKeepsAtLeastOneRow) {
  GroupInfo gi = MakeGroups();
  auto sampled = SampleGroups(gi, 5, 9);
  ASSERT_TRUE(sampled.ok());
  EXPECT_GE(sampled->group_size(0), 1u);
  EXPECT_GE(sampled->group_size(1), 1u);
}

TEST(SampleGroupsTest, ZeroRejected) {
  GroupInfo gi = MakeGroups();
  EXPECT_FALSE(SampleGroups(gi, 0, 1).ok());
}

TEST(SampleGroupsTest, DeterministicPerSeed) {
  GroupInfo gi = MakeGroups();
  auto a = SampleGroups(gi, 100, 42);
  auto b = SampleGroups(gi, 100, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->base_selection().rows(), b->base_selection().rows());
}

}  // namespace
}  // namespace sdadcs::data
