#include "data/sample.h"

#include <set>

#include <gtest/gtest.h>

#include "util/logging.h"

namespace sdadcs::data {
namespace {

TEST(SampleSelectionTest, ExactSizeWithoutReplacement) {
  util::Rng rng(1);
  Selection all = Selection::All(1000);
  Selection s = SampleSelection(all, 100, rng);
  EXPECT_EQ(s.size(), 100u);
  std::set<uint32_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 100u);
  // Sorted output.
  for (size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
}

TEST(SampleSelectionTest, OversizedRequestReturnsAll) {
  util::Rng rng(2);
  Selection all = Selection::All(50);
  EXPECT_EQ(SampleSelection(all, 500, rng).size(), 50u);
  EXPECT_EQ(SampleSelection(all, 50, rng).size(), 50u);
}

TEST(SampleSelectionTest, RoughlyUniform) {
  util::Rng rng(3);
  Selection all = Selection::All(1000);
  std::vector<int> hits(1000, 0);
  for (int t = 0; t < 200; ++t) {
    for (uint32_t r : SampleSelection(all, 100, rng)) ++hits[r];
  }
  // Each row expected ~20 hits; no row should be wildly off.
  for (int h : hits) {
    EXPECT_GT(h, 2);
    EXPECT_LT(h, 60);
  }
}

GroupInfo MakeGroups() {
  DatasetBuilder b;
  int g = b.AddCategorical("g");
  for (int i = 0; i < 1000; ++i) {
    b.AppendCategorical(g, i % 10 == 0 ? "rare" : "common");
  }
  auto db = std::move(b).Build();
  SDADCS_CHECK(db.ok());
  // Leak-free static storage for the dataset backing the GroupInfo in
  // these tests.
  static Dataset* stored = nullptr;
  delete stored;
  stored = new Dataset(std::move(db).value());
  auto gi = GroupInfo::CreateForValues(*stored, 0, {"rare", "common"});
  SDADCS_CHECK(gi.ok());
  return std::move(gi).value();
}

TEST(SampleGroupsTest, PreservesProportions) {
  GroupInfo gi = MakeGroups();
  auto sampled = SampleGroups(gi, 200, 7);
  ASSERT_TRUE(sampled.ok());
  // 10% rare: expect ~20 of 200.
  EXPECT_NEAR(static_cast<double>(sampled->group_size(0)), 20.0, 1.0);
  EXPECT_NEAR(static_cast<double>(sampled->total()), 200.0, 2.0);
}

TEST(SampleGroupsTest, EveryGroupKeepsAtLeastOneRow) {
  GroupInfo gi = MakeGroups();
  auto sampled = SampleGroups(gi, 5, 9);
  ASSERT_TRUE(sampled.ok());
  EXPECT_GE(sampled->group_size(0), 1u);
  EXPECT_GE(sampled->group_size(1), 1u);
}

TEST(SampleGroupsTest, ZeroRejected) {
  GroupInfo gi = MakeGroups();
  EXPECT_FALSE(SampleGroups(gi, 0, 1).ok());
}

TEST(SampleGroupsTest, SampledRowsAreSubsetOfBaseWithSameLabels) {
  // The seeding pre-pass re-scores sampled patterns on the full data, so
  // every sampled row must be a real row of the base selection and keep
  // its group assignment.
  GroupInfo gi = MakeGroups();
  auto sampled = SampleGroups(gi, 150, 13);
  ASSERT_TRUE(sampled.ok());
  std::set<uint32_t> base(gi.base_selection().begin(),
                          gi.base_selection().end());
  for (uint32_t r : sampled->base_selection()) {
    EXPECT_EQ(base.count(r), 1u) << "row " << r << " not in base";
    EXPECT_EQ(sampled->group_of(r), gi.group_of(r)) << "row " << r;
  }
}

TEST(SampleGroupsTest, ThreeGroupStratification) {
  DatasetBuilder b;
  int g = b.AddCategorical("g");
  for (int i = 0; i < 900; ++i) {
    // 600 "a", 200 "b", 100 "c".
    const char* label = i % 9 < 6 ? "a" : (i % 9 < 8 ? "b" : "c");
    b.AppendCategorical(g, label);
  }
  auto db = std::move(b).Build();
  SDADCS_CHECK(db.ok());
  static Dataset* stored = nullptr;
  delete stored;
  stored = new Dataset(std::move(db).value());
  auto gi = GroupInfo::CreateForValues(*stored, 0, {"a", "b", "c"});
  ASSERT_TRUE(gi.ok());
  auto sampled = SampleGroups(*gi, 90, 17);
  ASSERT_TRUE(sampled.ok());
  // Strata scale with group shares: ~60/20/10 rows.
  EXPECT_NEAR(static_cast<double>(sampled->group_size(0)), 60.0, 2.0);
  EXPECT_NEAR(static_cast<double>(sampled->group_size(1)), 20.0, 2.0);
  EXPECT_NEAR(static_cast<double>(sampled->group_size(2)), 10.0, 2.0);
}

TEST(SampleGroupsTest, DeterministicPerSeed) {
  GroupInfo gi = MakeGroups();
  auto a = SampleGroups(gi, 100, 42);
  auto b = SampleGroups(gi, 100, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->base_selection().rows(), b->base_selection().rows());
}

}  // namespace
}  // namespace sdadcs::data
