#include "data/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace sdadcs::data {
namespace {

TEST(CsvTest, InfersTypesFromValues) {
  auto db = ReadCsvString("num,cat\n1.5,a\n2,b\n-3e2,a\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_rows(), 3u);
  EXPECT_TRUE(db->is_continuous(0));
  EXPECT_TRUE(db->is_categorical(1));
  EXPECT_DOUBLE_EQ(db->continuous(0).value(2), -300.0);
}

TEST(CsvTest, MixedColumnBecomesCategorical) {
  auto db = ReadCsvString("col\n1\nx\n2\n");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->is_categorical(0));
}

TEST(CsvTest, MissingTokens) {
  auto db = ReadCsvString("a,b\n1,?\n,x\nNA,y\n");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->is_continuous(0));
  EXPECT_TRUE(db->continuous(0).is_missing(1));
  EXPECT_TRUE(db->continuous(0).is_missing(2));
  EXPECT_TRUE(db->categorical(1).is_missing(0));
}

TEST(CsvTest, ForceCategoricalOverridesInference) {
  CsvOptions opts;
  opts.force_categorical = {"code"};
  auto db = ReadCsvString("code\n1\n2\n1\n", opts);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->is_categorical(0));
  EXPECT_EQ(db->categorical(0).cardinality(), 2);
}

TEST(CsvTest, NoHeaderGeneratesNames) {
  CsvOptions opts;
  opts.has_header = false;
  auto db = ReadCsvString("1,a\n2,b\n", opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->schema().attribute(0).name, "attr_0");
  EXPECT_EQ(db->schema().attribute(1).name, "attr_1");
}

TEST(CsvTest, AlternateDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  auto db = ReadCsvString("a;b\n1;x\n", opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_attributes(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvString("a,b\n1,2\n3\n").ok());
}

TEST(CsvTest, RejectsEmptyAndHeaderOnly) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n").ok());
}

TEST(CsvTest, HandlesCrLf) {
  auto db = ReadCsvString("a,b\r\n1,x\r\n2,y\r\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_rows(), 2u);
  EXPECT_EQ(db->categorical(1).ValueOf(db->categorical(1).code(1)), "y");
}

TEST(CsvTest, AllMissingColumnIsCategorical) {
  auto db = ReadCsvString("a,b\n?,1\n?,2\n");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->is_categorical(0));
}

TEST(CsvTest, RoundTripThroughWrite) {
  auto db = ReadCsvString("num,cat\n1.25,a\n-2,b\n");
  ASSERT_TRUE(db.ok());
  std::string text = WriteCsvString(*db);
  auto db2 = ReadCsvString(text);
  ASSERT_TRUE(db2.ok());
  EXPECT_EQ(db2->num_rows(), db->num_rows());
  EXPECT_DOUBLE_EQ(db2->continuous(0).value(0), 1.25);
  EXPECT_EQ(db2->categorical(1).ValueOf(db2->categorical(1).code(1)), "b");
}

TEST(CsvTest, FileRoundTrip) {
  auto db = ReadCsvString("x,y\n1,a\n2,b\n");
  ASSERT_TRUE(db.ok());
  std::string path = testing::TempDir() + "/sdadcs_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*db, path).ok());
  auto db2 = ReadCsvFile(path);
  ASSERT_TRUE(db2.ok());
  EXPECT_EQ(db2->num_rows(), 2u);
  std::remove(path.c_str());
}

TEST(CsvQuotingTest, QuotedDelimiterIsData) {
  auto db = ReadCsvString("name,score\n\"Doe, Jane\",5\nBob,3\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_attributes(), 2u);
  const auto& col = db->categorical(0);
  EXPECT_EQ(col.ValueOf(col.code(0)), "Doe, Jane");
}

TEST(CsvQuotingTest, EscapedQuotes) {
  auto db = ReadCsvString("q\n\"say \"\"hi\"\"\"\nplain\n");
  ASSERT_TRUE(db.ok());
  const auto& col = db->categorical(0);
  EXPECT_EQ(col.ValueOf(col.code(0)), "say \"hi\"");
}

TEST(CsvQuotingTest, QuotedFieldPreservesSpaces) {
  auto db = ReadCsvString("v\n\"  padded  \"\nother\n");
  ASSERT_TRUE(db.ok());
  const auto& col = db->categorical(0);
  EXPECT_EQ(col.ValueOf(col.code(0)), "  padded  ");
}

TEST(CsvQuotingTest, UnterminatedQuoteIsError) {
  auto db = ReadCsvString("v\n\"oops\nnext\n");
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(CsvQuotingTest, WriterQuotesAndRoundTrips) {
  DatasetBuilder b;
  int c = b.AddCategorical("label");
  b.AppendCategorical(c, "a,b");
  b.AppendCategorical(c, "has \"quotes\"");
  b.AppendCategorical(c, " spaced ");
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  std::string text = WriteCsvString(*db);
  auto db2 = ReadCsvString(text);
  ASSERT_TRUE(db2.ok());
  const auto& col = db2->categorical(0);
  EXPECT_EQ(col.ValueOf(col.code(0)), "a,b");
  EXPECT_EQ(col.ValueOf(col.code(1)), "has \"quotes\"");
  EXPECT_EQ(col.ValueOf(col.code(2)), " spaced ");
}

TEST(CsvQuotingTest, QuotedNumbersStayNumeric) {
  auto db = ReadCsvString("x\n\"1.5\"\n\"2.5\"\n");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->is_continuous(0));
  EXPECT_DOUBLE_EQ(db->continuous(0).value(1), 2.5);
}

TEST(CsvTest, MissingFileIsIoError) {
  auto db = ReadCsvFile("/nonexistent/path/data.csv");
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), util::StatusCode::kIoError);
}

}  // namespace
}  // namespace sdadcs::data
