#include "data/selection.h"

#include <gtest/gtest.h>

namespace sdadcs::data {
namespace {

TEST(SelectionTest, AllEnumeratesEveryRow) {
  Selection s = Selection::All(4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[3], 3u);
}

TEST(SelectionTest, FilterKeepsMatching) {
  Selection s = Selection::All(10);
  Selection even = s.Filter([](uint32_t r) { return r % 2 == 0; });
  EXPECT_EQ(even.size(), 5u);
  EXPECT_EQ(even[2], 4u);
}

TEST(SelectionTest, IntersectSortedSets) {
  Selection a({1, 3, 5, 7});
  Selection b({3, 4, 5, 6});
  Selection c = a.Intersect(b);
  EXPECT_EQ(c.rows(), (std::vector<uint32_t>{3, 5}));
}

TEST(SelectionTest, IntersectWithEmpty) {
  Selection a({1, 2});
  Selection empty;
  EXPECT_TRUE(a.Intersect(empty).empty());
  EXPECT_TRUE(empty.Intersect(a).empty());
}

TEST(SelectionTest, MinusRemovesMembers) {
  Selection a({1, 2, 3, 4});
  Selection b({2, 4, 9});
  EXPECT_EQ(a.Minus(b).rows(), (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(b.Minus(a).rows(), (std::vector<uint32_t>{9}));
}

TEST(SelectionTest, RangeBasedIteration) {
  Selection s({5, 6});
  uint32_t sum = 0;
  for (uint32_t r : s) sum += r;
  EXPECT_EQ(sum, 11u);
}

}  // namespace
}  // namespace sdadcs::data
