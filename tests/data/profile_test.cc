#include "data/profile.h"

#include <gtest/gtest.h>

namespace sdadcs::data {
namespace {

Dataset MakeDb() {
  DatasetBuilder b;
  int x = b.AddContinuous("x");
  int c = b.AddCategorical("c");
  const double xs[] = {1, 2, 3, 4, 100};
  const char* cs[] = {"red", "red", "blue", "red", "green"};
  for (int i = 0; i < 5; ++i) {
    b.AppendContinuous(x, xs[i]);
    b.AppendCategorical(c, cs[i]);
  }
  b.AppendMissing(x);
  b.AppendMissing(c);
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(ProfileTest, ContinuousStatistics) {
  Dataset db = MakeDb();
  AttributeProfile p = ProfileAttribute(db, 0, Selection::All(6));
  EXPECT_EQ(p.name, "x");
  EXPECT_EQ(p.type, AttributeType::kContinuous);
  EXPECT_EQ(p.rows, 6u);
  EXPECT_EQ(p.missing, 1u);
  EXPECT_DOUBLE_EQ(p.min, 1.0);
  EXPECT_DOUBLE_EQ(p.max, 100.0);
  EXPECT_DOUBLE_EQ(p.mean, 22.0);
  EXPECT_DOUBLE_EQ(p.median, 3.0);
  EXPECT_GT(p.stddev, 40.0);
  EXPECT_NEAR(p.missing_fraction(), 1.0 / 6.0, 1e-12);
}

TEST(ProfileTest, CategoricalStatistics) {
  Dataset db = MakeDb();
  AttributeProfile p = ProfileAttribute(db, 1, Selection::All(6));
  EXPECT_EQ(p.type, AttributeType::kCategorical);
  EXPECT_EQ(p.cardinality, 3);
  EXPECT_EQ(p.top_value, "red");
  EXPECT_EQ(p.top_count, 3u);
  EXPECT_EQ(p.missing, 1u);
}

TEST(ProfileTest, RespectsSelection) {
  Dataset db = MakeDb();
  AttributeProfile p = ProfileAttribute(db, 0, Selection({0, 1}));
  EXPECT_DOUBLE_EQ(p.max, 2.0);
  EXPECT_EQ(p.missing, 0u);
}

TEST(ProfileTest, ProfileDatasetCoversAllAttributes) {
  Dataset db = MakeDb();
  auto profiles = ProfileDataset(db);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].name, "x");
  EXPECT_EQ(profiles[1].name, "c");
}

TEST(ProfileTest, FormatIncludesKeyNumbers) {
  Dataset db = MakeDb();
  std::string table = FormatProfiles(ProfileDataset(db));
  EXPECT_NE(table.find("attribute"), std::string::npos);
  EXPECT_NE(table.find("max=100"), std::string::npos);
  EXPECT_NE(table.find("top='red' (3)"), std::string::npos);
}

TEST(ProfileTest, EmptySelectionIsSafe) {
  Dataset db = MakeDb();
  AttributeProfile p = ProfileAttribute(db, 0, Selection());
  EXPECT_EQ(p.rows, 0u);
  EXPECT_DOUBLE_EQ(p.missing_fraction(), 0.0);
}

}  // namespace
}  // namespace sdadcs::data
