#include "data/chunks.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/selection.h"
#include "data/shard.h"
#include "data/spill.h"
#include "util/random.h"

namespace sdadcs::data {
namespace {

TEST(ChunkLayoutTest, GeometryTilesRowsExactlyForEveryChunkSize) {
  // Degenerate sizes included: chunk_rows 1 (every row its own chunk)
  // and chunk_rows > num_rows (the whole column is one short chunk).
  for (size_t rows : {0u, 1u, 7u, 100u, 4096u}) {
    for (size_t chunk_rows :
         {size_t{1}, size_t{7}, size_t{64}, rows + 1, size_t{10000}}) {
      ChunkLayout layout(rows, chunk_rows);
      ASSERT_EQ(layout.chunk_rows(), chunk_rows);
      if (rows == 0) {
        EXPECT_EQ(layout.num_chunks(), 0u);
        continue;
      }
      EXPECT_EQ(layout.num_chunks(), (rows + chunk_rows - 1) / chunk_rows);
      // Chunks tile [0, rows) contiguously and agree with chunk_of.
      uint32_t next = 0;
      for (size_t c = 0; c < layout.num_chunks(); ++c) {
        EXPECT_EQ(layout.begin(c), next);
        EXPECT_GT(layout.end(c), layout.begin(c));
        EXPECT_EQ(layout.size(c), layout.end(c) - layout.begin(c));
        EXPECT_EQ(layout.chunk_of(layout.begin(c)), c);
        EXPECT_EQ(layout.chunk_of(layout.end(c) - 1), c);
        next = layout.end(c);
      }
      EXPECT_EQ(next, rows) << rows << "/" << chunk_rows;
      // Every chunk but the last is full.
      for (size_t c = 0; c + 1 < layout.num_chunks(); ++c) {
        EXPECT_EQ(layout.size(c), chunk_rows);
      }
    }
  }
}

TEST(ChunkLayoutTest, ZeroChunkRowsFallsBackToDefault) {
  ChunkLayout layout(100, 0);
  EXPECT_EQ(layout.chunk_rows(), kDefaultChunkRows);
  EXPECT_EQ(layout.num_chunks(), 1u);
}

TEST(ForEachChunkSpanTest, PartitionsSortedSelectionAtChunkSeams) {
  // A sparse sorted selection with rows straddling several seams; the
  // spans must rebuild the selection exactly and never cross a seam.
  std::vector<uint32_t> rows = {0, 1, 6, 7, 8, 13, 14, 20, 27, 34, 99};
  for (size_t chunk_rows : {1u, 7u, 50u, 1000u}) {
    ChunkLayout layout(100, chunk_rows);
    std::vector<uint32_t> rebuilt;
    size_t spans = 0;
    ForEachChunkSpan(layout, rows.data(), rows.size(),
                     [&](uint32_t chunk, size_t b, size_t e) {
                       ++spans;
                       ASSERT_LT(b, e);
                       for (size_t i = b; i < e; ++i) {
                         EXPECT_GE(rows[i], layout.begin(chunk));
                         EXPECT_LT(rows[i], layout.end(chunk));
                         rebuilt.push_back(rows[i]);
                       }
                     });
    EXPECT_EQ(rebuilt, rows) << "chunk_rows " << chunk_rows;
    if (chunk_rows == 1) EXPECT_EQ(spans, rows.size());
    if (chunk_rows == 1000) EXPECT_EQ(spans, 1u);  // one span: dense path
  }
  // Empty selection: no spans, no crash.
  ForEachChunkSpan(ChunkLayout(100, 7), rows.data(), 0,
                   [&](uint32_t, size_t, size_t) { FAIL(); });
}

TEST(ForEachChunkSpanTest, ShardSlicesComposeWithMisalignedChunkSeams) {
  // Shard boundaries (rows/4 = 25) deliberately misaligned with chunk
  // seams (7): slicing a selection by shard and then spanning each slice
  // by chunk must cover the selection exactly once, with every span
  // inside both its shard range and its chunk.
  std::vector<uint32_t> picked;
  util::Rng rng(17);
  for (uint32_t r = 0; r < 100; ++r) {
    if (rng.Bernoulli(0.4)) picked.push_back(r);
  }
  Selection sel(picked);
  ShardPlan plan(100, 4);
  ChunkLayout layout(100, 7);
  std::vector<uint32_t> rebuilt;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    const ShardRange& range = plan.range(s);
    ShardView view = SliceSelection(sel, range);
    ForEachChunkSpan(layout, view.rows, view.size,
                     [&](uint32_t chunk, size_t b, size_t e) {
                       for (size_t i = b; i < e; ++i) {
                         uint32_t row = view.rows[i];
                         EXPECT_GE(row, range.begin_row);
                         EXPECT_LT(row, range.end_row);
                         EXPECT_EQ(layout.chunk_of(row), chunk);
                         rebuilt.push_back(row);
                       }
                     });
  }
  EXPECT_EQ(rebuilt, picked);
}

// A small mixed dataset with NaNs and repeated tokens, plus its spill.
Dataset MakeMixed(size_t rows) {
  DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  int y = b.AddContinuous("y");
  util::Rng rng(5);
  for (size_t i = 0; i < rows; ++i) {
    b.AppendCategorical(g, (i % 3 == 0) ? "a" : (i % 3 == 1) ? "b" : "c");
    b.AppendContinuous(x, (i % 11 == 0) ? std::nan("")
                                        : rng.Uniform(-10.0, 10.0));
    b.AppendContinuous(y, static_cast<double>(i));
  }
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

std::string SpillPath(const char* tag) {
  return testing::TempDir() + "chunks_test_" + tag + ".spill";
}

TEST(SpillTest, RoundTripIsExactForEveryChunkSize) {
  const size_t kRows = 103;
  Dataset dense = MakeMixed(kRows);
  std::string path = SpillPath("roundtrip");
  ASSERT_TRUE(WriteSpill(dense, path).ok());
  for (size_t chunk_rows : {size_t{1}, size_t{7}, size_t{64}, kRows + 1}) {
    SpillOptions opt;
    opt.chunk_rows = chunk_rows;
    auto paged = OpenSpill(path, opt);
    ASSERT_TRUE(paged.ok()) << paged.status().ToString();
    ASSERT_TRUE(paged->paged());
    ASSERT_EQ(paged->num_rows(), kRows);
    ASSERT_EQ(paged->chunk_rows(), chunk_rows);
    // Schema and dictionary survive.
    ASSERT_EQ(paged->schema().num_attributes(), 3u);
    EXPECT_EQ(paged->schema().attribute(0).name, "g");
    EXPECT_EQ(paged->categorical(0).ValueOf(dense.categorical(0).code(3)),
              dense.categorical(0).ValueOf(dense.categorical(0).code(3)));
    // Every element, through the scalar paged accessors.
    for (uint32_t r = 0; r < kRows; ++r) {
      EXPECT_EQ(paged->categorical(0).code(r), dense.categorical(0).code(r));
      double pv = paged->continuous(1).value(r);
      double dv = dense.continuous(1).value(r);
      if (std::isnan(dv)) {
        EXPECT_TRUE(std::isnan(pv)) << "row " << r;
      } else {
        EXPECT_EQ(pv, dv) << "row " << r;
      }
      EXPECT_EQ(paged->continuous(2).value(r), dense.continuous(2).value(r));
    }
  }
  std::remove(path.c_str());
}

TEST(SpillTest, PinnedChunksServeChunkLocalIndices) {
  const size_t kRows = 50;
  Dataset dense = MakeMixed(kRows);
  std::string path = SpillPath("pins");
  ASSERT_TRUE(WriteSpill(dense, path).ok());
  SpillOptions opt;
  opt.chunk_rows = 7;
  auto paged = OpenSpill(path, opt);
  ASSERT_TRUE(paged.ok());
  ColumnChunks chunks = paged->chunks();
  for (size_t c = 0; c < chunks.layout().num_chunks(); ++c) {
    PinnedChunk pin = chunks.Continuous(2, static_cast<uint32_t>(c));
    ASSERT_TRUE(pin.valid());
    EXPECT_EQ(pin.row_base(), chunks.layout().begin(c));
    EXPECT_EQ(pin.rows(), chunks.layout().size(c));
    for (uint32_t r = pin.row_base(); r < pin.row_base() + pin.rows(); ++r) {
      EXPECT_EQ(pin.values()[r - pin.row_base()],
                dense.continuous(2).value(r));
    }
    PinnedChunk codes = chunks.Categorical(0, static_cast<uint32_t>(c));
    for (uint32_t r = codes.row_base(); r < codes.row_base() + codes.rows();
         ++r) {
      EXPECT_EQ(codes.codes()[r - codes.row_base()],
                dense.categorical(0).code(r));
    }
  }
  std::remove(path.c_str());
}

TEST(SpillTest, ResidentBackendHandsOutBorrowedSlices) {
  Dataset dense = MakeMixed(50);
  dense.SetChunkRows(7);
  ColumnChunks chunks = dense.chunks();
  ASSERT_FALSE(chunks.paged());
  EXPECT_EQ(chunks.layout().num_chunks(), 8u);
  PinnedChunk pin = chunks.Continuous(2, 3);
  EXPECT_EQ(pin.row_base(), 21u);
  EXPECT_EQ(pin.values(), dense.continuous(2).values().data() + 21);
  // Borrowed slices never touch a store: no stats to account.
  EXPECT_EQ(dense.chunk_store(), nullptr);
}

TEST(ChunkStoreTest, CapEvictsUnpinnedBeforeLoadingAndTryPinDeclines) {
  const size_t kRows = 64;  // chunk_rows 16 -> 4 chunks of 128 bytes each
  Dataset dense = MakeMixed(kRows);
  std::string path = SpillPath("cap");
  ASSERT_TRUE(WriteSpill(dense, path).ok());
  SpillOptions opt;
  opt.chunk_rows = 16;
  opt.max_resident_bytes = 2 * 16 * sizeof(double);  // two chunks of "y"
  auto paged = OpenSpill(path, opt);
  ASSERT_TRUE(paged.ok());
  const ChunkStore* store = paged->chunk_store();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->stats().max_resident_bytes, opt.max_resident_bytes);

  // Attribute 2 ("y") is continuous: 128 bytes per chunk.
  const void* c0 = store->Pin(2, 0);
  ASSERT_NE(c0, nullptr);
  EXPECT_EQ(store->stats().loads, 1u);
  EXPECT_EQ(store->stats().resident_bytes, 128u);

  // Second pin fits exactly; a third must evict — but everything is
  // pinned, so Pin overshoots (never fails) while TryPin declines.
  const void* c1 = store->Pin(2, 1);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(store->stats().resident_bytes, 256u);
  EXPECT_EQ(store->TryPin(2, 2), nullptr);
  EXPECT_EQ(store->stats().loads, 2u);  // the decline loaded nothing
  const void* c2 = store->Pin(2, 2);
  ASSERT_NE(c2, nullptr);
  EXPECT_GT(store->stats().resident_bytes, opt.max_resident_bytes);

  // Release everything: the next load evicts LRU cold chunks back under
  // the cap instead of growing.
  store->Unpin(2, 0);
  store->Unpin(2, 1);
  store->Unpin(2, 2);
  const void* c3 = store->Pin(2, 3);
  ASSERT_NE(c3, nullptr);
  EXPECT_LE(store->stats().resident_bytes, opt.max_resident_bytes);
  EXPECT_GT(store->stats().evictions, 0u);
  store->Unpin(2, 3);

  // TrimUnpinned drops everything once no pins remain.
  size_t freed = store->TrimUnpinned();
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(store->stats().resident_bytes, 0u);
  // Peak never lies: it must cover the 3-chunk overshoot above.
  EXPECT_GE(store->stats().peak_resident_bytes, 3 * 128u);
  std::remove(path.c_str());
}

TEST(ChunkStoreTest, PinSetHintsRespectTheCapAndResidentIsNoOp) {
  Dataset dense = MakeMixed(64);
  // Resident dataset: the hint is a no-op.
  EXPECT_EQ(ChunkPinSet(dense, {1, 2}, 0, 64).size(), 0u);

  std::string path = SpillPath("pinset");
  ASSERT_TRUE(WriteSpill(dense, path).ok());
  SpillOptions opt;
  opt.chunk_rows = 16;
  opt.max_resident_bytes = 3 * 16 * sizeof(double);
  auto paged = OpenSpill(path, opt);
  ASSERT_TRUE(paged.ok());
  {
    // Rows [0, 32) of one attribute: two chunks, fits.
    ChunkPinSet hint(*paged, {2}, 0, 32);
    EXPECT_EQ(hint.size(), 2u);
    EXPECT_LE(paged->chunk_store()->stats().resident_bytes,
              opt.max_resident_bytes);
    // The whole column would blow the cap: the hint stops early rather
    // than overshoot.
    ChunkPinSet greedy(*paged, {2}, 0, 64);
    EXPECT_LT(greedy.size(), 4u);
    EXPECT_LE(paged->chunk_store()->stats().resident_bytes,
              opt.max_resident_bytes);
  }
  // Hints release their pins on destruction.
  EXPECT_GT(paged->chunk_store()->TrimUnpinned(), 0u);
  EXPECT_EQ(paged->chunk_store()->stats().resident_bytes, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sdadcs::data
