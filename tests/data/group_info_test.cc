#include "data/group_info.h"

#include <gtest/gtest.h>

namespace sdadcs::data {
namespace {

Dataset MakeDb() {
  DatasetBuilder b;
  int g = b.AddCategorical("group");
  int x = b.AddContinuous("x");
  const char* groups[] = {"a", "b", "a", "c", "b", "a"};
  for (int i = 0; i < 6; ++i) {
    b.AppendCategorical(g, groups[i]);
    b.AppendContinuous(x, i);
  }
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(GroupInfoTest, CreateCoversAllValues) {
  Dataset db = MakeDb();
  auto gi = GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  EXPECT_EQ(gi->num_groups(), 3);
  EXPECT_EQ(gi->total(), 6u);
  EXPECT_EQ(gi->group_size(0), 3u);  // "a"
  EXPECT_EQ(gi->group_of(0), 0);
  EXPECT_EQ(gi->group_of(3), 2);  // "c"
}

TEST(GroupInfoTest, CreateForValuesExcludesOthers) {
  Dataset db = MakeDb();
  auto gi = GroupInfo::CreateForValues(db, 0, {"a", "b"});
  ASSERT_TRUE(gi.ok());
  EXPECT_EQ(gi->num_groups(), 2);
  EXPECT_EQ(gi->total(), 5u);
  EXPECT_EQ(gi->group_of(3), -1);  // "c" excluded
  EXPECT_EQ(gi->base_selection().size(), 5u);
  EXPECT_EQ(gi->group_name(1), "b");
}

TEST(GroupInfoTest, RejectsContinuousGroupAttribute) {
  Dataset db = MakeDb();
  EXPECT_FALSE(GroupInfo::Create(db, 1).ok());
}

TEST(GroupInfoTest, RejectsUnknownValue) {
  Dataset db = MakeDb();
  EXPECT_FALSE(GroupInfo::CreateForValues(db, 0, {"a", "zzz"}).ok());
}

TEST(GroupInfoTest, RejectsSingleGroup) {
  Dataset db = MakeDb();
  EXPECT_FALSE(GroupInfo::CreateForValues(db, 0, {"a"}).ok());
}

TEST(GroupInfoTest, RejectsDuplicateGroupValues) {
  Dataset db = MakeDb();
  EXPECT_FALSE(GroupInfo::CreateForValues(db, 0, {"a", "a"}).ok());
}

TEST(GroupInfoTest, RejectsOutOfRangeAttribute) {
  Dataset db = MakeDb();
  EXPECT_FALSE(GroupInfo::Create(db, 7).ok());
  EXPECT_FALSE(GroupInfo::Create(db, -1).ok());
}

TEST(GroupInfoOneVsRestTest, SplitsValueAgainstEverythingElse) {
  Dataset db = MakeDb();  // groups a,b,a,c,b,a
  auto gi = GroupInfo::CreateOneVsRest(db, 0, "a");
  ASSERT_TRUE(gi.ok());
  EXPECT_EQ(gi->num_groups(), 2);
  EXPECT_EQ(gi->group_name(0), "a");
  EXPECT_EQ(gi->group_name(1), "rest");
  EXPECT_EQ(gi->group_size(0), 3u);
  EXPECT_EQ(gi->group_size(1), 3u);  // b, c, b
  EXPECT_EQ(gi->group_of(3), 1);     // "c" lands in rest
  EXPECT_EQ(gi->total(), 6u);
}

TEST(GroupInfoOneVsRestTest, UnknownValueFails) {
  Dataset db = MakeDb();
  EXPECT_FALSE(GroupInfo::CreateOneVsRest(db, 0, "zzz").ok());
}

TEST(GroupInfoOneVsRestTest, AllRowsSameValueFails) {
  DatasetBuilder b;
  int g = b.AddCategorical("g");
  for (int i = 0; i < 4; ++i) b.AppendCategorical(g, "only");
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(GroupInfo::CreateOneVsRest(*db, 0, "only").ok());
}

TEST(GroupInfoTest, MissingGroupValuesExcluded) {
  DatasetBuilder b;
  int g = b.AddCategorical("group");
  b.AppendCategorical(g, "a");
  b.AppendMissing(g);
  b.AppendCategorical(g, "b");
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto gi = GroupInfo::Create(*db, 0);
  ASSERT_TRUE(gi.ok());
  EXPECT_EQ(gi->total(), 2u);
  EXPECT_EQ(gi->group_of(1), -1);
}

}  // namespace
}  // namespace sdadcs::data
