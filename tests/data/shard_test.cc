#include "data/shard.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/selection.h"

namespace sdadcs::data {
namespace {

TEST(ShardPlanTest, PartitionsRowsContiguouslyAndExactly) {
  for (size_t rows : {0u, 1u, 7u, 100u, 101u, 4096u}) {
    for (size_t shards : {1u, 2u, 3u, 8u, 200u}) {
      ShardPlan plan(rows, shards);
      ASSERT_GE(plan.num_shards(), 1u);
      // Ranges must tile [0, rows) in ascending order with no gaps.
      uint32_t next = 0;
      size_t total = 0;
      for (size_t i = 0; i < plan.num_shards(); ++i) {
        ShardRange r = plan.range(i);
        EXPECT_EQ(r.begin_row, next) << rows << "/" << shards << " #" << i;
        EXPECT_GE(r.end_row, r.begin_row);
        next = r.end_row;
        total += r.size();
      }
      EXPECT_EQ(next, rows) << rows << "/" << shards;
      EXPECT_EQ(total, rows);
      // Balanced to within one row.
      if (plan.num_shards() > 1) {
        size_t lo = rows, hi = 0;
        for (size_t i = 0; i < plan.num_shards(); ++i) {
          lo = std::min(lo, static_cast<size_t>(plan.range(i).size()));
          hi = std::max(hi, static_cast<size_t>(plan.range(i).size()));
        }
        EXPECT_LE(hi - lo, 1u) << rows << "/" << shards;
      }
    }
  }
}

TEST(ShardPlanTest, NeverMakesMoreShardsThanRows) {
  EXPECT_EQ(ShardPlan(3, 10).num_shards(), 3u);
  EXPECT_EQ(ShardPlan(0, 10).num_shards(), 1u);
  EXPECT_EQ(ShardPlan(10, 0).num_shards(), 1u);
}

TEST(ShardViewTest, SliceSelectionSplitsSortedRowsByRange) {
  // A sparse ascending selection; slices must concatenate back exactly.
  Selection sel({2, 5, 9, 10, 31, 64, 65, 99});
  ShardPlan plan(100, 4);  // ranges [0,25) [25,50) [50,75) [75,100)
  std::vector<uint32_t> rebuilt;
  for (size_t i = 0; i < plan.num_shards(); ++i) {
    ShardView view = SliceSelection(sel, plan.range(i));
    for (size_t k = 0; k < view.size; ++k) {
      uint32_t row = view.rows[k];
      EXPECT_GE(row, plan.range(i).begin_row);
      EXPECT_LT(row, plan.range(i).end_row);
      rebuilt.push_back(row);
    }
  }
  EXPECT_EQ(rebuilt,
            std::vector<uint32_t>(sel.rows().begin(), sel.rows().end()));

  // Ranges with no covered rows produce empty views, not errors.
  ShardView empty = SliceSelection(sel, ShardRange{40, 60});
  EXPECT_TRUE(empty.empty());
  Selection round = ToSelection(SliceSelection(sel, ShardRange{0, 11}));
  EXPECT_EQ(round.size(), 4u);
}

}  // namespace
}  // namespace sdadcs::data
