#include "data/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sdadcs::data {
namespace {

TEST(DatasetBuilderTest, BuildsMixedDataset) {
  DatasetBuilder b;
  int age = b.AddContinuous("age");
  int occ = b.AddCategorical("occupation");
  b.AppendContinuous(age, 30.0);
  b.AppendContinuous(age, 40.0);
  b.AppendCategorical(occ, "eng");
  b.AppendCategorical(occ, "sales");

  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_rows(), 2u);
  EXPECT_EQ(db->num_attributes(), 2u);
  EXPECT_TRUE(db->is_continuous(age));
  EXPECT_TRUE(db->is_categorical(occ));
  EXPECT_DOUBLE_EQ(db->continuous(age).value(1), 40.0);
  EXPECT_EQ(db->categorical(occ).ValueOf(db->categorical(occ).code(0)),
            "eng");
}

TEST(DatasetBuilderTest, RejectsRaggedColumns) {
  DatasetBuilder b;
  int a = b.AddContinuous("a");
  int c = b.AddCategorical("c");
  b.AppendContinuous(a, 1.0);
  b.AppendContinuous(a, 2.0);
  b.AppendCategorical(c, "only-one");
  auto db = std::move(b).Build();
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(DatasetBuilderTest, RejectsDuplicateAttributeName) {
  DatasetBuilder b;
  b.AddContinuous("x");
  b.AddCategorical("x");
  auto db = std::move(b).Build();
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), util::StatusCode::kAlreadyExists);
}

TEST(DatasetBuilderTest, RejectsEmptySchema) {
  DatasetBuilder b;
  auto db = std::move(b).Build();
  EXPECT_FALSE(db.ok());
}

TEST(DatasetBuilderTest, MissingValues) {
  DatasetBuilder b;
  int x = b.AddContinuous("x");
  int c = b.AddCategorical("c");
  b.AppendMissing(x);
  b.AppendContinuous(x, 5.0);
  b.AppendCategorical(c, "v");
  b.AppendMissing(c);
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->continuous(x).is_missing(0));
  EXPECT_FALSE(db->continuous(x).is_missing(1));
  EXPECT_FALSE(db->categorical(c).is_missing(0));
  EXPECT_TRUE(db->categorical(c).is_missing(1));
}

TEST(DatasetTest, DebugRowRendersValuesAndMissing) {
  DatasetBuilder b;
  int x = b.AddContinuous("x");
  int c = b.AddCategorical("c");
  b.AppendContinuous(x, 1.5);
  b.AppendCategorical(c, "v1");
  b.AppendMissing(x);
  b.AppendMissing(c);
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->DebugRow(0), "x=1.5, c=v1");
  EXPECT_EQ(db->DebugRow(1), "x=?, c=?");
}

TEST(SchemaTest, IndexOfFindsAndFails) {
  Schema s;
  ASSERT_TRUE(s.Add("a", AttributeType::kContinuous).ok());
  ASSERT_TRUE(s.Add("b", AttributeType::kCategorical).ok());
  EXPECT_EQ(*s.IndexOf("b"), 1);
  EXPECT_FALSE(s.IndexOf("zzz").ok());
}

TEST(SchemaTest, AttributesOfType) {
  Schema s;
  ASSERT_TRUE(s.Add("a", AttributeType::kContinuous).ok());
  ASSERT_TRUE(s.Add("b", AttributeType::kCategorical).ok());
  ASSERT_TRUE(s.Add("c", AttributeType::kContinuous).ok());
  EXPECT_EQ(s.AttributesOfType(AttributeType::kContinuous),
            (std::vector<int>{0, 2}));
  EXPECT_EQ(s.AttributesOfType(AttributeType::kCategorical),
            (std::vector<int>{1}));
}

TEST(ColumnTest, DictionaryEncoding) {
  CategoricalColumn col;
  col.Append("x");
  col.Append("y");
  col.Append("x");
  EXPECT_EQ(col.cardinality(), 2);
  EXPECT_EQ(col.code(0), col.code(2));
  EXPECT_NE(col.code(0), col.code(1));
  EXPECT_EQ(col.CodeOf("y"), col.code(1));
  EXPECT_EQ(col.CodeOf("unseen"), kMissingCode);
}

TEST(ColumnTest, ContinuousMinMaxSkipsMissing) {
  ContinuousColumn col;
  col.Append(3.0);
  col.AppendMissing();
  col.Append(-1.0);
  EXPECT_DOUBLE_EQ(col.Min(), -1.0);
  EXPECT_DOUBLE_EQ(col.Max(), 3.0);
}

}  // namespace
}  // namespace sdadcs::data
