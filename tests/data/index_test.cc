#include "data/index.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace sdadcs::data {
namespace {

Dataset MakeDb() {
  DatasetBuilder b;
  int c = b.AddCategorical("c");
  int x = b.AddContinuous("x");
  const char* cs[] = {"a", "b", "a", "c", "b", "a"};
  const double xs[] = {5.0, 1.0, 3.0, 2.0, 4.0, 3.0};
  for (int i = 0; i < 6; ++i) {
    b.AppendCategorical(c, cs[i]);
    b.AppendContinuous(x, xs[i]);
  }
  b.AppendMissing(c);
  b.AppendMissing(x);
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(CategoricalIndexTest, PostingsGroupRowsByValue) {
  Dataset db = MakeDb();
  CategoricalIndex idx = CategoricalIndex::Build(db, 0);
  int32_t a = db.categorical(0).CodeOf("a");
  EXPECT_EQ(idx.RowsFor(a).rows(), (std::vector<uint32_t>{0, 2, 5}));
  int32_t c = db.categorical(0).CodeOf("c");
  EXPECT_EQ(idx.RowsFor(c).rows(), (std::vector<uint32_t>{3}));
}

TEST(CategoricalIndexTest, MissingRowsNotIndexed) {
  Dataset db = MakeDb();
  CategoricalIndex idx = CategoricalIndex::Build(db, 0);
  size_t total = 0;
  for (int32_t code = 0; code < idx.cardinality(); ++code) {
    total += idx.RowsFor(code).size();
  }
  EXPECT_EQ(total, 6u);  // the missing 7th row appears nowhere
}

TEST(CategoricalIndexTest, OutOfRangeCodeIsEmpty) {
  Dataset db = MakeDb();
  CategoricalIndex idx = CategoricalIndex::Build(db, 0);
  EXPECT_TRUE(idx.RowsFor(-1).empty());
  EXPECT_TRUE(idx.RowsFor(99).empty());
}

TEST(ContinuousIndexTest, RangeMatchesItemSemantics) {
  Dataset db = MakeDb();
  ContinuousIndex idx = ContinuousIndex::Build(db, 1);
  // (2, 4]: values 3, 3, 4 -> rows 2, 4, 5 (sorted).
  EXPECT_EQ(idx.RowsInRange(2.0, 4.0).rows(),
            (std::vector<uint32_t>{2, 4, 5}));
  EXPECT_EQ(idx.CountInRange(2.0, 4.0), 3u);
  // lo is exclusive, hi inclusive.
  EXPECT_EQ(idx.CountInRange(3.0, 5.0), 2u);  // 4 and 5
  EXPECT_EQ(idx.CountInRange(10.0, 20.0), 0u);
}

TEST(ContinuousIndexTest, AgreesWithScanOnRandomData) {
  DatasetBuilder b;
  int x = b.AddContinuous("x");
  util::Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    if (rng.Bernoulli(0.05)) {
      b.AppendMissing(x);
    } else {
      b.AppendContinuous(x, rng.Uniform(0.0, 100.0));
    }
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  ContinuousIndex idx = ContinuousIndex::Build(*db, 0);
  const auto& col = db->continuous(0);
  for (int trial = 0; trial < 20; ++trial) {
    double lo = rng.Uniform(0.0, 100.0);
    double hi = lo + rng.Uniform(0.0, 40.0);
    Selection via_scan = Selection::All(db->num_rows())
                             .Filter([&](uint32_t r) {
                               double v = col.value(r);
                               return !std::isnan(v) && v > lo && v <= hi;
                             });
    EXPECT_EQ(idx.RowsInRange(lo, hi).rows(), via_scan.rows())
        << "(" << lo << "," << hi << "]";
    EXPECT_EQ(idx.CountInRange(lo, hi), via_scan.size());
  }
}

}  // namespace
}  // namespace sdadcs::data
