// PreparedDataset: lazy single-flight artifact construction, keyed group
// artifacts, rank-based medians matching the value-based reference, and
// byte accounting.

#include "data/prepared.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "synth/uci_like.h"

namespace sdadcs::data {
namespace {

TEST(PreparedDatasetTest, SortArtifactBuiltOnceUnderConcurrency) {
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/3);
  PreparedDataset prepared(&nd.db);

  std::vector<int> cont;
  for (size_t a = 0; a < nd.db.num_attributes(); ++a) {
    if (nd.db.is_continuous(static_cast<int>(a))) {
      cont.push_back(static_cast<int>(a));
    }
  }
  ASSERT_FALSE(cont.empty());

  // Many threads race for every artifact; single-flight construction
  // must build each exactly once and hand everyone the same pointer.
  constexpr int kThreads = 8;
  std::vector<std::vector<const SortIndex*>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int attr : cont) seen[t].push_back(prepared.Sorted(attr));
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < cont.size(); ++i) {
      ASSERT_NE(seen[t][i], nullptr);
      EXPECT_EQ(seen[t][i], seen[0][i]) << "thread " << t << " attr " << i;
      EXPECT_TRUE(seen[t][i]->has_ranks());
    }
  }
  PreparedStats stats = prepared.stats();
  EXPECT_EQ(stats.sort_builds, cont.size());
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(prepared.MemoryUsage(), stats.bytes);
}

TEST(PreparedDatasetTest, SortedRejectsCategoricalAndOutOfRange) {
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/3);
  PreparedDataset prepared(&nd.db);
  int cat = -1;
  for (size_t a = 0; a < nd.db.num_attributes(); ++a) {
    if (!nd.db.is_continuous(static_cast<int>(a))) {
      cat = static_cast<int>(a);
      break;
    }
  }
  ASSERT_GE(cat, 0);
  EXPECT_EQ(prepared.Sorted(cat), nullptr);
  EXPECT_EQ(prepared.Sorted(-1), nullptr);
  EXPECT_EQ(prepared.Sorted(static_cast<int>(nd.db.num_attributes())),
            nullptr);
  EXPECT_EQ(prepared.stats().sort_builds, 0u);
}

TEST(PreparedDatasetTest, RankedMedianMatchesValueMedian) {
  synth::NamedDataset nd = synth::MakeUciLike("breast", /*seed=*/11);
  PreparedDataset prepared(&nd.db);
  std::mt19937 rng(41);
  std::uniform_int_distribution<uint32_t> pick(
      0, static_cast<uint32_t>(nd.db.num_rows() - 1));

  for (size_t a = 0; a < nd.db.num_attributes(); ++a) {
    int attr = static_cast<int>(a);
    if (!nd.db.is_continuous(attr)) continue;
    const SortIndex* index = prepared.Sorted(attr);
    ASSERT_NE(index, nullptr);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<uint32_t> rows;
      for (int i = 0; i < 40; ++i) rows.push_back(pick(rng));
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      Selection sel(std::move(rows));
      double ranked = MedianInSelectionRanked(nd.db, attr, sel, *index);
      double reference = MedianInSelection(nd.db, attr, sel);
      if (std::isnan(reference)) {
        EXPECT_TRUE(std::isnan(ranked));
      } else {
        // Bit-identical, not just close: the rank order refines the
        // value order, so both paths select the same element.
        EXPECT_EQ(ranked, reference) << "attr " << attr;
      }
    }
  }
}

TEST(PreparedDatasetTest, GroupArtifactCachedByKey) {
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/3);
  PreparedDataset prepared(&nd.db);

  auto first = prepared.Groups(nd.group_attr, nd.groups);
  ASSERT_TRUE(first.ok());
  auto second = prepared.Groups(nd.group_attr, nd.groups);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());

  auto all_values = prepared.Groups(nd.group_attr, {});
  ASSERT_TRUE(all_values.ok());
  EXPECT_NE(all_values->get(), first->get());

  PreparedStats stats = prepared.stats();
  EXPECT_EQ(stats.group_builds, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(PreparedDatasetTest, GroupArtifactCarriesSessionState) {
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/3);
  PreparedDataset prepared(&nd.db);
  auto pg = prepared.Groups(nd.group_attr, nd.groups);
  ASSERT_TRUE(pg.ok());
  const PreparedGroups& art = **pg;

  const int group_attr = art.groups.group_attr();
  for (int attr : art.attributes) EXPECT_NE(attr, group_attr);
  EXPECT_EQ(art.attributes.size(), nd.db.num_attributes() - 1);

  ASSERT_EQ(art.group_sizes.size(),
            static_cast<size_t>(art.groups.num_groups()));
  for (int g = 0; g < art.groups.num_groups(); ++g) {
    EXPECT_EQ(art.group_sizes[g],
              static_cast<double>(art.groups.group_size(g)));
  }

  for (int attr : art.attributes) {
    if (!nd.db.is_continuous(attr)) continue;
    auto it = art.root_bounds.find(attr);
    ASSERT_NE(it, art.root_bounds.end());
    RootBounds reference =
        ComputeRootBounds(nd.db, attr, art.groups.base_selection());
    EXPECT_EQ(it->second.lo, reference.lo);
    EXPECT_EQ(it->second.hi, reference.hi);
  }
}

TEST(PreparedDatasetTest, GroupFailureIsNotCached) {
  synth::NamedDataset nd = synth::MakeUciLike("adult", /*seed=*/3);
  PreparedDataset prepared(&nd.db);

  auto bad = prepared.Groups(nd.group_attr, {"no-such-value", "other"});
  EXPECT_FALSE(bad.ok());
  auto bad_again = prepared.Groups(nd.group_attr, {"no-such-value", "other"});
  EXPECT_FALSE(bad_again.ok());
  EXPECT_EQ(prepared.stats().group_builds, 0u);

  auto missing_attr = prepared.Groups("no-such-attribute", {});
  EXPECT_FALSE(missing_attr.ok());

  // A failed spec must not poison the slot for a later valid request.
  auto good = prepared.Groups(nd.group_attr, nd.groups);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(prepared.stats().group_builds, 1u);
}

}  // namespace
}  // namespace sdadcs::data
