#include "data/simd_select.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace sdadcs::data {
namespace {

// The SIMD quickselect must return the identical double to
// std::nth_element for every k — duplicates, sorted, reversed and
// random inputs alike. On hosts without AVX2 the simd path degrades to
// nth_element and the test still pins the dispatch contract.
TEST(SimdSelectTest, MatchesNthElementForEveryK) {
  util::Rng rng(7);
  SelectScratch scratch;
  for (size_t n : {1u, 2u, 3u, 5u, 63u, 64u, 65u, 257u, 1000u}) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<double> base(n);
      for (size_t i = 0; i < n; ++i) {
        switch (variant) {
          case 0:  // random
            base[i] = rng.NextDouble() * 100.0 - 50.0;
            break;
          case 1:  // heavy duplicates
            base[i] = static_cast<double>(static_cast<int>(i) % 7);
            break;
          case 2:  // sorted ascending
            base[i] = static_cast<double>(i);
            break;
          default:  // all equal
            base[i] = 42.0;
            break;
        }
      }
      // Every k for small n; a spread of ks for larger n.
      std::vector<size_t> ks;
      if (n <= 65) {
        for (size_t k = 0; k < n; ++k) ks.push_back(k);
      } else {
        ks = {0, 1, n / 4, (n - 1) / 2, n / 2, n - 2, n - 1};
      }
      for (size_t k : ks) {
        std::vector<double> a = base;
        std::vector<double> b = base;
        std::nth_element(a.begin(), a.begin() + static_cast<long>(k),
                         a.end());
        double expected = a[k];
        double got = SelectKth(b.data(), n, k, /*simd=*/true, &scratch);
        EXPECT_EQ(expected, got) << "n=" << n << " k=" << k
                                 << " variant=" << variant;
      }
    }
  }
}

TEST(SimdSelectTest, GatherDropsNanKeepsOrderAndMax) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> values;
  std::vector<uint32_t> rows;
  util::Rng rng(13);
  for (uint32_t i = 0; i < 533; ++i) {
    values.push_back(rng.NextDouble() < 0.2 ? nan : rng.NextDouble() * 10.0);
    rows.push_back(i);
  }
  // Reference: scalar row-order gather.
  std::vector<double> expected;
  double expected_max = -std::numeric_limits<double>::infinity();
  for (uint32_t r : rows) {
    if (std::isnan(values[r])) continue;
    expected.push_back(values[r]);
    expected_max = std::max(expected_max, values[r]);
  }
  for (bool simd : {false, true}) {
    std::vector<double> out;
    double mx = 0.0;
    size_t cnt =
        GatherNonNanMax(values.data(), rows.data(), rows.size(), &out, &mx,
                        simd);
    ASSERT_EQ(expected.size(), cnt) << "simd=" << simd;
    for (size_t i = 0; i < cnt; ++i) {
      EXPECT_EQ(expected[i], out[i]) << "simd=" << simd << " i=" << i;
    }
    EXPECT_EQ(expected_max, mx) << "simd=" << simd;
  }
}

TEST(SimdSelectTest, GatherAllNanReportsNanMaxAndZeroCount) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> values(9, nan);
  std::vector<uint32_t> rows{0, 1, 2, 3, 4, 5, 6, 7, 8};
  for (bool simd : {false, true}) {
    std::vector<double> out;
    double mx = 0.0;
    size_t cnt = GatherNonNanMax(values.data(), rows.data(), rows.size(),
                                 &out, &mx, simd);
    EXPECT_EQ(0u, cnt) << "simd=" << simd;
    EXPECT_TRUE(std::isnan(mx)) << "simd=" << simd;
  }
}

}  // namespace
}  // namespace sdadcs::data
