#include "subgroup/beam.h"

#include <gtest/gtest.h>

#include "synth/simulated.h"
#include "util/logging.h"

namespace sdadcs::subgroup {
namespace {

TEST(BeamTest, FindsObviousSubgroup) {
  data::Dataset db = synth::MakeSimulated3(1000);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BeamConfig cfg;
  cfg.max_depth = 2;
  BeamSubgroupDiscovery beam(cfg);
  // Group2 = Attr1 < 0.5; the discovery for Group2's index must lead
  // with an Attr1 interval.
  int target = gi->group_name(0) == "Group2" ? 0 : 1;
  BeamStats stats;
  std::vector<Subgroup> subgroups = beam.Discover(db, *gi, target, &stats);
  ASSERT_FALSE(subgroups.empty());
  EXPECT_GT(stats.descriptions_evaluated, 0u);
  const Subgroup& top = subgroups.front();
  EXPECT_GT(top.quality, 0.15);  // near the 0.25 WRAcc optimum
  ASSERT_GE(top.description.size(), 1u);
  bool uses_attr1 = false;
  for (const core::Item& it : top.description.items()) {
    if (db.schema().attribute(it.attr).name == "Attr1") uses_attr1 = true;
  }
  EXPECT_TRUE(uses_attr1);
}

TEST(BeamTest, QualitySortedDescending) {
  data::Dataset db = synth::MakeSimulated4(1000);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BeamSubgroupDiscovery beam;
  std::vector<Subgroup> subgroups = beam.Discover(db, *gi, 0);
  for (size_t i = 1; i < subgroups.size(); ++i) {
    EXPECT_GE(subgroups[i - 1].quality, subgroups[i].quality);
  }
}

TEST(BeamTest, ValidateCatchesSharedAndBeamFields) {
  BeamConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.top_k = 0;  // shared knob, checked through MinerConfig::Validate
  auto st = cfg.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("top_k"), std::string::npos);

  BeamConfig beam_field;
  beam_field.beam_width = 0;
  auto st2 = beam_field.Validate();
  ASSERT_FALSE(st2.ok());
  EXPECT_NE(st2.ToString().find("beam_width"), std::string::npos);
}

TEST(BeamTest, UnifiedMineEntryPoint) {
  data::Dataset db = synth::MakeSimulated3(1000);
  BeamConfig cfg;
  cfg.max_depth = 2;
  BeamSubgroupDiscovery beam(cfg);

  core::MineRequest request;
  request.group_attr = "Group";
  auto result = beam.Mine(db, request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completion, core::Completion::kComplete);
  EXPECT_FALSE(result->contrasts.empty());
  EXPECT_GT(result->counters.partitions_evaluated, 0u);
  EXPECT_EQ(result->group_names.size(), 2u);

  // Invalid config is rejected before any work happens.
  BeamConfig bad;
  bad.num_bins = 1;
  auto rejected = BeamSubgroupDiscovery(bad).Mine(db, request);
  EXPECT_FALSE(rejected.ok());
}

TEST(BeamTest, CancelledControlReturnsEarly) {
  data::Dataset db = synth::MakeSimulated4(1000);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  util::RunControl control;
  control.Cancel();
  BeamStats stats;
  BeamSubgroupDiscovery beam;
  std::vector<Subgroup> subgroups =
      beam.Discover(db, *gi, 0, &stats, &control);
  EXPECT_TRUE(subgroups.empty());
  EXPECT_EQ(stats.completion, core::Completion::kCancelled);

  core::MineRequest request;
  request.group_attr = "Group";
  request.run_control = control;
  auto result = beam.Mine(db, request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completion, core::Completion::kCancelled);
}

TEST(BeamTest, RespectsTopKAndMinQuality) {
  data::Dataset db = synth::MakeSimulated4(1200);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BeamConfig cfg;
  cfg.top_k = 5;
  cfg.min_quality = 0.02;
  BeamSubgroupDiscovery beam(cfg);
  std::vector<Subgroup> subgroups = beam.Discover(db, *gi, 0);
  EXPECT_LE(subgroups.size(), 5u);
  for (const Subgroup& sg : subgroups) {
    EXPECT_GE(sg.quality, cfg.min_quality);
  }
}

TEST(BeamTest, DepthOneOnlySingleConditions) {
  data::Dataset db = synth::MakeSimulated4(800);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BeamConfig cfg;
  cfg.max_depth = 1;
  BeamSubgroupDiscovery beam(cfg);
  for (const Subgroup& sg : beam.Discover(db, *gi, 0)) {
    EXPECT_EQ(sg.description.size(), 1u);
  }
}

TEST(BeamTest, DiscoverContrastsPoolsBothGroups) {
  data::Dataset db = synth::MakeSimulated3(1000);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BeamConfig cfg;
  cfg.max_depth = 2;
  BeamSubgroupDiscovery beam(cfg);
  auto contrasts =
      beam.DiscoverContrasts(db, *gi, core::MeasureKind::kSupportDiff);
  ASSERT_FALSE(contrasts.empty());
  // Sorted by measure; stats filled.
  for (size_t i = 1; i < contrasts.size(); ++i) {
    EXPECT_GE(contrasts[i - 1].measure, contrasts[i].measure);
  }
  for (const core::ContrastPattern& p : contrasts) {
    EXPECT_EQ(p.supports.size(), 2u);
  }
  EXPECT_GT(contrasts.front().diff, 0.8);
}

TEST(BeamTest, GreedySearchMissesXor) {
  // The paper's core criticism of the greedy baseline: on X-shaped data
  // no single refinement looks good, so beam search (which must go
  // through a level-1 condition) finds only weak or no subgroups, while
  // SDAD-CS finds the strong quadrant contrasts (see core tests).
  data::Dataset db = synth::MakeSimulated2(1200);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BeamConfig cfg;
  cfg.max_depth = 2;
  cfg.min_quality = 0.01;
  BeamSubgroupDiscovery beam(cfg);
  auto contrasts =
      beam.DiscoverContrasts(db, *gi, core::MeasureKind::kSupportDiff);
  double best_diff = contrasts.empty() ? 0.0 : contrasts.front().diff;
  EXPECT_LT(best_diff, 0.55);
}

TEST(BeamTest, MaxCoverageEnforced) {
  data::Dataset db = synth::MakeSimulated3(400);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BeamConfig cfg;
  cfg.max_coverage = 120;
  BeamSubgroupDiscovery beam(cfg);
  for (const Subgroup& sg : beam.Discover(db, *gi, 0)) {
    double total = 0.0;
    for (double c : sg.counts) total += c;
    EXPECT_LE(total, 120.0);
  }
}

TEST(BeamTest, MinCoverageEnforced) {
  data::Dataset db = synth::MakeSimulated3(300);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  BeamConfig cfg;
  cfg.min_coverage = 50;
  BeamSubgroupDiscovery beam(cfg);
  for (const Subgroup& sg : beam.Discover(db, *gi, 0)) {
    double total = 0.0;
    for (double c : sg.counts) total += c;
    EXPECT_GE(total, 50.0);
  }
}

}  // namespace
}  // namespace sdadcs::subgroup
