#ifndef SDADCS_TESTS_COMMON_REQUESTS_H_
#define SDADCS_TESTS_COMMON_REQUESTS_H_

#include <string>
#include <utility>
#include <vector>

#include "core/miner.h"
#include "data/group_info.h"

namespace sdadcs::test_support {

/// Builds the unified MineRequest most tests need: contrast the values
/// of `group_attr` (all of them when `group_values` is empty).
inline core::MineRequest GroupRequest(
    std::string group_attr, std::vector<std::string> group_values = {}) {
  core::MineRequest request;
  request.group_attr = std::move(group_attr);
  request.group_values = std::move(group_values);
  return request;
}

/// A request against a pre-built GroupInfo; `gi` must outlive the
/// mining call.
inline core::MineRequest GroupsRequest(const data::GroupInfo& gi) {
  core::MineRequest request;
  request.groups = &gi;
  return request;
}

}  // namespace sdadcs::test_support

#endif  // SDADCS_TESTS_COMMON_REQUESTS_H_
