#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "data/group_info.h"

#include "synth/manufacturing.h"
#include "synth/scaling.h"
#include "synth/simulated.h"
#include "synth/two_group.h"
#include "synth/uci_like.h"

namespace sdadcs::synth {
namespace {

double SupportOf(const data::Dataset& db, const data::GroupInfo& gi,
                 int group, const std::function<bool(uint32_t)>& pred) {
  (void)db;  // the predicates capture the dataset they need
  double count = 0.0;
  for (uint32_t r : gi.base_selection()) {
    if (gi.group_of(r) == group && pred(r)) count += 1.0;
  }
  return count / static_cast<double>(gi.group_size(group));
}

TEST(TwoGroupBuilderTest, SizesAndGroups) {
  TwoGroupBuilder b("g", "x", "y", 30, 20, 1);
  b.AddGaussian("f", 0.0, 1.0, 5.0, 1.0);
  data::Dataset db = std::move(b).Build();
  EXPECT_EQ(db.num_rows(), 50u);
  auto gi = data::GroupInfo::CreateForValues(db, 0, {"x", "y"});
  ASSERT_TRUE(gi.ok());
  EXPECT_EQ(gi->group_size(0), 30u);
  EXPECT_EQ(gi->group_size(1), 20u);
}

TEST(TwoGroupBuilderTest, GroupConditionalDistributions) {
  TwoGroupBuilder b("g", "lo", "hi", 500, 500, 2);
  b.AddGaussian("f", 0.0, 1.0, 10.0, 1.0);
  data::Dataset db = std::move(b).Build();
  auto gi = data::GroupInfo::CreateForValues(db, 0, {"lo", "hi"});
  ASSERT_TRUE(gi.ok());
  double sum0 = 0.0;
  double sum1 = 0.0;
  const auto& col = db.continuous(1);
  for (uint32_t r = 0; r < db.num_rows(); ++r) {
    if (gi->group_of(r) == 0) {
      sum0 += col.value(r);
    } else {
      sum1 += col.value(r);
    }
  }
  EXPECT_NEAR(sum0 / 500.0, 0.0, 0.2);
  EXPECT_NEAR(sum1 / 500.0, 10.0, 0.2);
}

TEST(TwoGroupBuilderTest, DerivedSeesEarlierColumns) {
  TwoGroupBuilder b("g", "a", "b", 100, 100, 3);
  b.AddUniform("base", 0.0, 1.0, 0.0, 1.0);
  b.AddDerivedContinuous("double", [&b](int, uint32_t row, util::Rng&) {
    return 2.0 * b.ContinuousValue("base", row);
  });
  data::Dataset db = std::move(b).Build();
  for (uint32_t r = 0; r < db.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(db.continuous(2).value(r),
                     2.0 * db.continuous(1).value(r));
  }
}

TEST(TwoGroupBuilderTest, InjectMissingCreatesGaps) {
  TwoGroupBuilder b("g", "a", "b", 300, 300, 4);
  b.AddUniformNoise("f", 0.0, 1.0);
  b.InjectMissing("f", 0.2);
  data::Dataset db = std::move(b).Build();
  size_t missing = 0;
  for (uint32_t r = 0; r < db.num_rows(); ++r) {
    if (db.continuous(1).is_missing(r)) ++missing;
  }
  EXPECT_GT(missing, 80u);
  EXPECT_LT(missing, 160u);
}

TEST(TwoGroupBuilderTest, DeterministicForSeed) {
  auto make = [] {
    TwoGroupBuilder b("g", "a", "b", 50, 50, 77);
    b.AddGaussian("f", 0.0, 1.0, 1.0, 1.0);
    return std::move(b).Build();
  };
  data::Dataset d1 = make();
  data::Dataset d2 = make();
  for (uint32_t r = 0; r < d1.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(d1.continuous(1).value(r), d2.continuous(1).value(r));
  }
}

TEST(SimulatedTest, Dataset1PerfectBoundary) {
  data::Dataset db = MakeSimulated1(1000);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  int g2 = gi->group_name(0) == "Group2" ? 0 : 1;
  const auto& attr1 = db.continuous(1);
  for (uint32_t r = 0; r < db.num_rows(); ++r) {
    EXPECT_EQ(gi->group_of(r) == g2, attr1.value(r) < 0.5);
  }
}

TEST(SimulatedTest, Dataset2MarginalsBalanced) {
  data::Dataset db = MakeSimulated2(2000);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  // No univariate half-space should strongly separate the groups.
  for (int attr : {1, 2}) {
    double s0 = SupportOf(db, *gi, 0, [&](uint32_t r) {
      return db.continuous(attr).value(r) <= 0.5;
    });
    double s1 = SupportOf(db, *gi, 1, [&](uint32_t r) {
      return db.continuous(attr).value(r) <= 0.5;
    });
    EXPECT_NEAR(s0, s1, 0.08) << "attr " << attr;
  }
}

TEST(SimulatedTest, Dataset4BlockMembership) {
  data::Dataset db = MakeSimulated4(2000);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  int g1 = gi->group_name(0) == "Group1" ? 0 : 1;
  for (uint32_t r = 0; r < db.num_rows(); ++r) {
    double x = db.continuous(1).value(r);
    double y = db.continuous(2).value(r);
    bool in_block = (x < 0.25 && y < 0.5) || (x > 0.75 && y > 0.75);
    EXPECT_EQ(gi->group_of(r) == g1, in_block);
  }
}

TEST(SimulatedTest, Figure2RareGroupShare) {
  data::Dataset db = MakeFigure2Example(4000);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  int a = gi->group_name(0) == "A" ? 0 : 1;
  double frac = static_cast<double>(gi->group_size(a)) /
                static_cast<double>(db.num_rows());
  EXPECT_NEAR(frac, 0.02, 0.01);
}

TEST(UciLikeTest, AllGeneratorsProduceValidDatasets) {
  for (const std::string& name : UciLikeNames()) {
    NamedDataset nd = MakeUciLike(name);
    EXPECT_EQ(nd.name, name);
    EXPECT_GT(nd.db.num_rows(), 100u) << name;
    auto gi = data::GroupInfo::CreateForValues(
        nd.db, *nd.db.schema().IndexOf(nd.group_attr), nd.groups);
    ASSERT_TRUE(gi.ok()) << name;
    EXPECT_EQ(gi->num_groups(), 2) << name;
  }
}

TEST(UciLikeTest, AdultDoctoratesStartAtTwentySeven) {
  NamedDataset adult = MakeAdultLike();
  auto gi = data::GroupInfo::CreateForValues(
      adult.db, *adult.db.schema().IndexOf("education"), adult.groups);
  ASSERT_TRUE(gi.ok());
  int doc = gi->group_name(0) == "Doctorate" ? 0 : 1;
  int age_attr = *adult.db.schema().IndexOf("age");
  for (uint32_t r : gi->base_selection()) {
    if (gi->group_of(r) == doc) {
      EXPECT_GE(adult.db.continuous(age_attr).value(r), 27.0);
    }
  }
}

TEST(UciLikeTest, AdultProfSpecialtyDominatesDoctorates) {
  NamedDataset adult = MakeAdultLike();
  auto gi = data::GroupInfo::CreateForValues(
      adult.db, *adult.db.schema().IndexOf("education"), adult.groups);
  ASSERT_TRUE(gi.ok());
  int occ = *adult.db.schema().IndexOf("occupation");
  int32_t prof = adult.db.categorical(occ).CodeOf("Prof-specialty");
  ASSERT_NE(prof, data::kMissingCode);
  double s_doc = SupportOf(adult.db, *gi, 0, [&](uint32_t r) {
    return adult.db.categorical(occ).code(r) == prof;
  });
  double s_bach = SupportOf(adult.db, *gi, 1, [&](uint32_t r) {
    return adult.db.categorical(occ).code(r) == prof;
  });
  EXPECT_NEAR(s_doc, 0.76, 0.06);   // Table 3: 0.76
  EXPECT_NEAR(s_bach, 0.28, 0.05);  // Table 3: 0.28
}

TEST(UciLikeTest, ShuttleAttr1Pathology) {
  NamedDataset shuttle = MakeShuttleLike();
  auto gi = data::GroupInfo::CreateForValues(
      shuttle.db, *shuttle.db.schema().IndexOf("class"), shuttle.groups);
  ASSERT_TRUE(gi.ok());
  int attr1 = *shuttle.db.schema().IndexOf("attr1");
  double s_rad = SupportOf(shuttle.db, *gi, 0, [&](uint32_t r) {
    return shuttle.db.continuous(attr1).value(r) <= 54.0;
  });
  double s_high = SupportOf(shuttle.db, *gi, 1, [&](uint32_t r) {
    return shuttle.db.continuous(attr1).value(r) <= 54.0;
  });
  EXPECT_NEAR(s_rad, 0.91, 0.03);   // paper: 0.91
  EXPECT_NEAR(s_high, 0.01, 0.02);  // paper: 0.01
}

TEST(ManufacturingTest, PlantedCauseShowsInSupports) {
  ManufacturingOptions opt;
  opt.population = 2000;
  opt.fails = 400;
  NamedDataset mfg = MakeManufacturing(opt);
  auto gi = data::GroupInfo::CreateForValues(
      mfg.db, *mfg.db.schema().IndexOf("cohort"), mfg.groups);
  ASSERT_TRUE(gi.ok());
  int cam = *mfg.db.schema().IndexOf("cam_entity");
  int32_t sce = mfg.db.categorical(cam).CodeOf("SCE");
  double s_fail = SupportOf(mfg.db, *gi, 0, [&](uint32_t r) {
    return mfg.db.categorical(cam).code(r) == sce;
  });
  double s_pop = SupportOf(mfg.db, *gi, 1, [&](uint32_t r) {
    return mfg.db.categorical(cam).code(r) == sce;
  });
  // Table 7 shape: ~0.55 among fails vs ~0.28 in the population.
  EXPECT_GT(s_fail, s_pop + 0.15);
  EXPECT_NEAR(s_pop, 0.28, 0.06);
}

TEST(ManufacturingTest, ToolIsFunctionallyTiedToCam) {
  NamedDataset mfg = MakeManufacturing();
  int cam = *mfg.db.schema().IndexOf("cam_entity");
  int tool = *mfg.db.schema().IndexOf("placement_tool");
  for (uint32_t r = 0; r < mfg.db.num_rows(); ++r) {
    bool sce = mfg.db.categorical(cam).ValueOf(
                   mfg.db.categorical(cam).code(r)) == "SCE";
    bool jvf = mfg.db.categorical(tool).ValueOf(
                   mfg.db.categorical(tool).code(r)) == "JVF";
    EXPECT_EQ(sce, jvf);
  }
}

TEST(ScalingTest, RespectsSizeKnobs) {
  ScalingOptions opt;
  opt.rows = 5000;
  opt.continuous_features = 12;
  opt.categorical_features = 4;
  NamedDataset sc = MakeScalingDataset(opt);
  EXPECT_EQ(sc.db.num_rows(), 5000u);
  EXPECT_EQ(sc.db.num_attributes(), 17u);  // + group attribute
}

}  // namespace
}  // namespace sdadcs::synth
