#include "core/item.h"

#include <gtest/gtest.h>

namespace sdadcs::core {
namespace {

data::Dataset MakeDb() {
  data::DatasetBuilder b;
  int x = b.AddContinuous("x");
  int c = b.AddCategorical("color");
  b.AppendContinuous(x, 1.0);
  b.AppendCategorical(c, "red");
  b.AppendContinuous(x, 2.0);
  b.AppendCategorical(c, "blue");
  b.AppendMissing(x);
  b.AppendMissing(c);
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(ItemTest, IntervalMatchesHalfOpen) {
  data::Dataset db = MakeDb();
  Item it = Item::Interval(0, 1.0, 2.0);  // (1, 2]
  EXPECT_FALSE(it.Matches(db, 0));  // 1.0 excluded (lo open)
  EXPECT_TRUE(it.Matches(db, 1));   // 2.0 included (hi closed)
}

TEST(ItemTest, MissingNeverMatches) {
  data::Dataset db = MakeDb();
  EXPECT_FALSE(Item::Interval(0, -100, 100).Matches(db, 2));
  EXPECT_FALSE(Item::Categorical(1, 0).Matches(db, 2));
}

TEST(ItemTest, CategoricalMatchesByCode) {
  data::Dataset db = MakeDb();
  int32_t red = db.categorical(1).CodeOf("red");
  Item it = Item::Categorical(1, red);
  EXPECT_TRUE(it.Matches(db, 0));
  EXPECT_FALSE(it.Matches(db, 1));
}

TEST(ItemTest, ContainedInIntervals) {
  Item inner = Item::Interval(0, 2.0, 3.0);
  Item outer = Item::Interval(0, 1.0, 4.0);
  EXPECT_TRUE(inner.ContainedIn(outer));
  EXPECT_FALSE(outer.ContainedIn(inner));
  EXPECT_TRUE(inner.ContainedIn(inner));
  // Different attribute never contains.
  EXPECT_FALSE(inner.ContainedIn(Item::Interval(1, 0.0, 10.0)));
  // Kind mismatch never contains.
  EXPECT_FALSE(inner.ContainedIn(Item::Categorical(0, 1)));
}

TEST(ItemTest, ContainedInCategoricalIsEquality) {
  Item a = Item::Categorical(2, 5);
  Item b = Item::Categorical(2, 5);
  Item c = Item::Categorical(2, 6);
  EXPECT_TRUE(a.ContainedIn(b));
  EXPECT_FALSE(a.ContainedIn(c));
}

TEST(ItemTest, ToStringFormats) {
  data::Dataset db = MakeDb();
  EXPECT_EQ(Item::Interval(0, 1.0, 2.0).ToString(db), "1 < x <= 2");
  double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Item::Interval(0, -inf, 2.0).ToString(db), "x <= 2");
  EXPECT_EQ(Item::Interval(0, 1.0, inf).ToString(db), "x > 1");
  int32_t red = db.categorical(1).CodeOf("red");
  EXPECT_EQ(Item::Categorical(1, red).ToString(db), "color = red");
}

TEST(ItemTest, KeyIsCanonical) {
  EXPECT_EQ(Item::Categorical(3, 7).Key(), "3=7");
  EXPECT_EQ(Item::Interval(2, 0.5, 1.5).Key(),
            Item::Interval(2, 0.5, 1.5).Key());
  EXPECT_NE(Item::Interval(2, 0.5, 1.5).Key(),
            Item::Interval(2, 0.5, 1.6).Key());
}

TEST(ItemTest, OrderingByAttrThenValue) {
  Item a = Item::Categorical(0, 1);
  Item b = Item::Categorical(1, 0);
  Item c = Item::Interval(1, 0.0, 1.0);
  EXPECT_TRUE(ItemLess(a, b));
  EXPECT_FALSE(ItemLess(b, a));
  EXPECT_TRUE(ItemLess(b, c));  // categorical sorts before interval
}

TEST(ItemTest, Equality) {
  EXPECT_EQ(Item::Interval(0, 1, 2), Item::Interval(0, 1, 2));
  EXPECT_FALSE(Item::Interval(0, 1, 2) == Item::Interval(0, 1, 3));
  EXPECT_FALSE(Item::Interval(0, 1, 2) == Item::Categorical(0, 1));
}

}  // namespace
}  // namespace sdadcs::core
