#include "core/sdad.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/support.h"
#include "util/logging.h"
#include "util/random.h"

namespace sdadcs::core {
namespace {

// Owns every piece of a MiningContext for direct RunSdadCs tests.
class Harness {
 public:
  Harness(data::Dataset db, MinerConfig cfg)
      : db_(std::move(db)), cfg_(cfg), topk_(cfg.top_k, cfg.delta) {
    auto gi = data::GroupInfo::Create(db_, 0);
    SDADCS_CHECK(gi.ok());
    gi_ = std::make_unique<data::GroupInfo>(std::move(gi).value());
    ctx_.db = &db_;
    ctx_.gi = gi_.get();
    ctx_.cfg = &cfg_;
    ctx_.prune_table = &table_;
    ctx_.topk = &topk_;
    ctx_.counters = &counters_;
    ctx_.group_sizes = GroupSizes(*gi_);
    for (size_t a = 0; a < db_.num_attributes(); ++a) {
      if (db_.is_continuous(static_cast<int>(a))) {
        ctx_.root_bounds[static_cast<int>(a)] = ComputeRootBounds(
            db_, static_cast<int>(a), gi_->base_selection());
      }
    }
  }

  MiningContext& ctx() { return ctx_; }
  const data::Dataset& db() const { return db_; }
  PruneTable& table() { return table_; }
  MiningCounters& counters() { return counters_; }

  std::vector<ContrastPattern> Run(const std::vector<int>& cont_attrs) {
    SdadCall call = MakeRootCall(ctx_, Itemset(), cont_attrs);
    return RunSdadCs(ctx_, call);
  }

 private:
  data::Dataset db_;
  MinerConfig cfg_;
  std::unique_ptr<data::GroupInfo> gi_;
  PruneTable table_;
  TopK topk_;
  MiningCounters counters_;
  MiningContext ctx_;
};

// One continuous attribute; group "a" occupies (threshold, 100].
data::Dataset MakeSeparable1D(int n, double threshold) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(5);
  for (int i = 0; i < n; ++i) {
    double v = rng.Uniform(0.0, 100.0);
    b.AppendCategorical(g, v > threshold ? "a" : "b");
    b.AppendContinuous(x, v);
  }
  auto db = std::move(b).Build();
  SDADCS_CHECK(db.ok());
  return std::move(db).value();
}

// Deterministic grid where the class boundary coincides with the
// median: x = 0..399, group b below 200, group a at and above.
data::Dataset MakeMedianAligned() {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 0; i < 400; ++i) {
    b.AppendCategorical(g, i < 200 ? "b" : "a");
    b.AppendContinuous(x, i);
  }
  auto db = std::move(b).Build();
  SDADCS_CHECK(db.ok());
  return std::move(db).value();
}

TEST(SdadTest, PerfectSplitYieldsTwoPureCells) {
  MinerConfig cfg;
  Harness h(MakeMedianAligned(), cfg);
  std::vector<ContrastPattern> patterns = h.Run({1});
  ASSERT_EQ(patterns.size(), 2u);
  for (const ContrastPattern& p : patterns) {
    EXPECT_DOUBLE_EQ(p.purity, 1.0);
    EXPECT_LT(p.p_value, 1e-10);
  }
}

TEST(SdadTest, PureCellsBlockExtensions) {
  MinerConfig cfg;
  Harness h(MakeSeparable1D(400, 50.0), cfg);
  h.Run({1});
  EXPECT_GT(h.counters().pruned_pure, 0u);
  // Any sub-interval of a pure side, with more items, must now be
  // prunable via the lookup table.
  Itemset extension({Item::Interval(1, 60.0, 70.0),
                     Item::Categorical(0, 0)});
  EXPECT_TRUE(h.table().CanPrune(extension));
}

TEST(SdadTest, NoContrastReturnsEmpty) {
  // Group labels independent of x -> nothing to find.
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(6);
  for (int i = 0; i < 400; ++i) {
    b.AppendCategorical(g, rng.Bernoulli(0.5) ? "a" : "b");
    b.AppendContinuous(x, rng.Uniform(0.0, 100.0));
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  MinerConfig cfg;
  Harness h(std::move(db).value(), cfg);
  EXPECT_TRUE(h.Run({1}).empty());
}

TEST(SdadTest, OffMedianBoundaryFoundByRecursion) {
  // The boundary at 75 is not the first median (50); recursion must
  // refine into the right half to isolate it.
  MinerConfig cfg;
  cfg.sdad_max_level = 5;
  Harness h(MakeSeparable1D(800, 75.0), cfg);
  std::vector<ContrastPattern> patterns = h.Run({1});
  ASSERT_FALSE(patterns.empty());
  // Medians land near, not exactly on, 75, so demand a high-purity
  // pattern whose lower edge sits in the boundary's neighbourhood.
  bool found_tight = false;
  for (const ContrastPattern& p : patterns) {
    const Item& it = p.itemset.item(0);
    if (p.purity >= 0.85 && it.lo >= 62.0 && it.lo <= 83.0) {
      found_tight = true;
    }
  }
  EXPECT_TRUE(found_tight);
  EXPECT_GT(h.counters().sdad_calls, 1u);
}

TEST(SdadTest, CountersTrackEvaluations) {
  MinerConfig cfg;
  Harness h(MakeSeparable1D(400, 50.0), cfg);
  h.Run({1});
  EXPECT_GE(h.counters().partitions_evaluated, 2u);
  EXPECT_GE(h.counters().sdad_calls, 1u);
}

TEST(SdadTest, MakeRootCallFiltersMissingAndSetsParentStats) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 0; i < 10; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    if (i < 2) {
      b.AppendMissing(x);
    } else {
      b.AppendContinuous(x, i);
    }
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  MinerConfig cfg;
  Harness h(std::move(db).value(), cfg);
  SdadCall call = MakeRootCall(h.ctx(), Itemset(), {1});
  EXPECT_EQ(call.space.rows.size(), 8u);  // 2 missing excluded
  EXPECT_DOUBLE_EQ(call.outer_db_size, 8.0);
  EXPECT_EQ(call.parent_supports.size(), 2u);
  EXPECT_DOUBLE_EQ(call.parent_measure, 0.0);
}

TEST(MergeTest, SimilarNeighborsMerge) {
  MinerConfig cfg;
  Harness h(MakeSeparable1D(400, 50.0), cfg);
  MiningContext& ctx = h.ctx();

  auto make = [&](double lo, double hi, double ca, double cb) {
    ContrastPattern p;
    p.itemset = Itemset({Item::Interval(1, lo, hi)});
    p.counts = {ca, cb};
    p.ComputeStats(*ctx.gi, ctx.cfg->measure);
    p.hypervolume = (hi - lo) / 100.0;
    return p;
  };
  // Two adjacent intervals with nearly identical group distributions
  // (both strongly "a"): should merge into one (0,50].
  std::vector<ContrastPattern> patterns = {make(0, 25, 90, 5),
                                           make(25, 50, 85, 6)};
  MergeContiguousSpaces(ctx, &patterns);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_DOUBLE_EQ(patterns[0].itemset.item(0).lo, 0.0);
  EXPECT_DOUBLE_EQ(patterns[0].itemset.item(0).hi, 50.0);
  EXPECT_DOUBLE_EQ(patterns[0].counts[0], 175.0);
  EXPECT_GT(h.counters().merges, 0u);
}

TEST(MergeTest, DissimilarNeighborsDoNotMerge) {
  MinerConfig cfg;
  Harness h(MakeSeparable1D(400, 50.0), cfg);
  MiningContext& ctx = h.ctx();
  auto make = [&](double lo, double hi, double ca, double cb) {
    ContrastPattern p;
    p.itemset = Itemset({Item::Interval(1, lo, hi)});
    p.counts = {ca, cb};
    p.ComputeStats(*ctx.gi, ctx.cfg->measure);
    p.hypervolume = (hi - lo) / 100.0;
    return p;
  };
  // Opposite-dominance neighbors must stay apart.
  std::vector<ContrastPattern> patterns = {make(0, 50, 90, 5),
                                           make(50, 100, 5, 90)};
  MergeContiguousSpaces(ctx, &patterns);
  EXPECT_EQ(patterns.size(), 2u);
}

TEST(MergeTest, MergeAlphaControlsAggressiveness) {
  // Two adjacent regions whose distributions differ mildly: a strict
  // merge alpha (large alpha_r -> easy to call "different") keeps them
  // apart, a loose one merges them.
  auto make_patterns = [](MiningContext& ctx) {
    auto make = [&](double lo, double hi, double ca, double cb) {
      ContrastPattern p;
      p.itemset = Itemset({Item::Interval(1, lo, hi)});
      p.counts = {ca, cb};
      p.ComputeStats(*ctx.gi, ctx.cfg->measure);
      p.hypervolume = (hi - lo) / 100.0;
      return p;
    };
    return std::vector<ContrastPattern>{make(0, 25, 90, 20),
                                        make(25, 50, 75, 34)};
  };
  {
    MinerConfig cfg;
    cfg.merge_alpha = 0.3;  // strict: mild differences block merging
    Harness h(MakeSeparable1D(400, 50.0), cfg);
    std::vector<ContrastPattern> patterns = make_patterns(h.ctx());
    MergeContiguousSpaces(h.ctx(), &patterns);
    EXPECT_EQ(patterns.size(), 2u);
  }
  {
    MinerConfig cfg;
    cfg.merge_alpha = 0.001;  // loose: merge unless wildly different
    Harness h(MakeSeparable1D(400, 50.0), cfg);
    std::vector<ContrastPattern> patterns = make_patterns(h.ctx());
    MergeContiguousSpaces(h.ctx(), &patterns);
    EXPECT_EQ(patterns.size(), 1u);
  }
}

TEST(MergeTest, MergeAlphaDefaultsToAlpha) {
  MinerConfig cfg;
  cfg.alpha = 0.07;
  EXPECT_DOUBLE_EQ(cfg.MergeAlpha(), 0.07);
  cfg.merge_alpha = 0.2;
  EXPECT_DOUBLE_EQ(cfg.MergeAlpha(), 0.2);
}

TEST(MergeTest, NonAdjacentNeverMerge) {
  MinerConfig cfg;
  Harness h(MakeSeparable1D(400, 50.0), cfg);
  MiningContext& ctx = h.ctx();
  auto make = [&](double lo, double hi) {
    ContrastPattern p;
    p.itemset = Itemset({Item::Interval(1, lo, hi)});
    p.counts = {80, 6};
    p.ComputeStats(*ctx.gi, ctx.cfg->measure);
    p.hypervolume = (hi - lo) / 100.0;
    return p;
  };
  std::vector<ContrastPattern> patterns = {make(0, 20), make(40, 60)};
  MergeContiguousSpaces(ctx, &patterns);
  EXPECT_EQ(patterns.size(), 2u);
}

}  // namespace
}  // namespace sdadcs::core
