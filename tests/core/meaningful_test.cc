#include "core/meaningful.h"

#include <gtest/gtest.h>

#include "common/requests.h"
#include "core/miner.h"
#include "core/support.h"
#include "synth/simulated.h"
#include "synth/uci_like.h"

namespace sdadcs::core {
namespace {

using test_support::GroupRequest;

TEST(PatternClassNameTest, Stable) {
  EXPECT_STREQ(PatternClassName(PatternClass::kMeaningful), "meaningful");
  EXPECT_STREQ(PatternClassName(PatternClass::kRedundant), "redundant");
  EXPECT_STREQ(PatternClassName(PatternClass::kUnproductive),
               "unproductive");
}

TEST(ClassifyPatternsTest, EmptyListEmptyReport) {
  data::Dataset db = synth::MakeSimulated3(300);
  auto gi = data::GroupInfo::Create(db, 0);
  ASSERT_TRUE(gi.ok());
  MinerConfig cfg;
  MeaningfulnessReport report = ClassifyPatterns(db, *gi, cfg, {});
  EXPECT_EQ(report.meaningful, 0);
  EXPECT_EQ(report.meaningless(), 0);
}

TEST(ClassifyPatternsTest, UnfilteredNpOutputIsMostlyMeaningless) {
  // The Table 6 phenomenon: without the meaningfulness machinery most of
  // the top patterns are redundant/unproductive.
  synth::NamedDataset shuttle = synth::MakeShuttleLike();
  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.meaningful_pruning = false;
  cfg.attributes = {"attr1", "attr2", "attr9"};
  Miner miner(cfg);
  auto result =
      miner.Mine(shuttle.db, GroupRequest(shuttle.group_attr, shuttle.groups));
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->contrasts.size(), 5u);

  auto gi = data::GroupInfo::CreateForValues(
      shuttle.db, *shuttle.db.schema().IndexOf(shuttle.group_attr),
      shuttle.groups);
  ASSERT_TRUE(gi.ok());
  MeaningfulnessReport report =
      ClassifyPatterns(shuttle.db, *gi, cfg, result->contrasts);
  EXPECT_EQ(report.classes.size(), result->contrasts.size());
  EXPECT_GT(report.meaningless(), 0);
  // attr1 and attr9 are nearly functionally coupled: conjunctions of the
  // two are classified away.
  EXPECT_GT(report.redundant + report.unproductive +
                report.not_independently_productive,
            static_cast<int>(result->contrasts.size()) / 4);
}

TEST(ClassifyPatternsTest, CountsAddUp) {
  synth::NamedDataset adult = synth::MakeAdultLike();
  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.meaningful_pruning = false;
  cfg.attributes = {"age", "hours_per_week", "occupation"};
  Miner miner(cfg);
  auto result =
      miner.Mine(adult.db, GroupRequest(adult.group_attr, adult.groups));
  ASSERT_TRUE(result.ok());
  auto gi = data::GroupInfo::CreateForValues(
      adult.db, *adult.db.schema().IndexOf(adult.group_attr), adult.groups);
  ASSERT_TRUE(gi.ok());
  MeaningfulnessReport report =
      ClassifyPatterns(adult.db, *gi, cfg, result->contrasts);
  EXPECT_EQ(report.meaningful + report.meaningless(),
            static_cast<int>(result->contrasts.size()));
}

}  // namespace
}  // namespace sdadcs::core
