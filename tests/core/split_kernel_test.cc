#include "core/split_kernel.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/space.h"
#include "core/support.h"
#include "data/dataset.h"
#include "data/group_info.h"
#include "util/random.h"

namespace sdadcs::core {
namespace {

// Seeded random mixed dataset: `axes` continuous attributes (with a
// `missing_rate` share of NaN rows per attribute) plus a categorical
// group attribute with `num_values` values.
data::Dataset MakeRandom(uint64_t seed, size_t rows, int axes,
                         int num_values, double missing_rate) {
  util::Rng rng(seed);
  data::DatasetBuilder b;
  std::vector<int> cont;
  for (int a = 0; a < axes; ++a) {
    cont.push_back(b.AddContinuous("x" + std::to_string(a)));
  }
  int grp = b.AddCategorical("grp");
  for (size_t r = 0; r < rows; ++r) {
    for (int a = 0; a < axes; ++a) {
      if (rng.NextDouble() < missing_rate) {
        b.AppendMissing(cont[a]);
      } else {
        b.AppendContinuous(cont[a], rng.Uniform(-10.0, 10.0));
      }
    }
    b.AppendCategorical(
        grp, "g" + std::to_string(rng.NextBelow(
                       static_cast<uint64_t>(num_values))));
  }
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

// The seed hot path the fused kernel replaces: per-cell filter followed
// by a per-cell counting scan.
struct NaiveResult {
  std::vector<Space> cells;
  std::vector<GroupCounts> counts;
};

NaiveResult NaiveSplitAndCount(const data::Dataset& db,
                               const data::GroupInfo& gi, const Space& space,
                               const std::vector<double>& cuts) {
  NaiveResult out;
  out.cells = FindCombs(db, space, cuts);
  out.counts.reserve(out.cells.size());
  for (const Space& cell : out.cells) {
    out.counts.push_back(CountGroups(gi, cell.rows));
  }
  return out;
}

void ExpectIdentical(const SplitResult& fused, const NaiveResult& naive) {
  ASSERT_EQ(fused.cells.size(), naive.cells.size());
  ASSERT_EQ(fused.counts.size(), naive.counts.size());
  for (size_t c = 0; c < fused.cells.size(); ++c) {
    SCOPED_TRACE("cell " + std::to_string(c));
    const Space& fc = fused.cells[c];
    const Space& nc = naive.cells[c];
    ASSERT_EQ(fc.bounds.size(), nc.bounds.size());
    for (size_t a = 0; a < fc.bounds.size(); ++a) {
      EXPECT_EQ(fc.bounds[a].attr, nc.bounds[a].attr);
      EXPECT_EQ(fc.bounds[a].lo, nc.bounds[a].lo);
      EXPECT_EQ(fc.bounds[a].hi, nc.bounds[a].hi);
    }
    EXPECT_EQ(fc.rows.rows(), nc.rows.rows());
    EXPECT_EQ(fused.counts[c].counts, naive.counts[c].counts);
  }
}

Space RootSpace(const data::Dataset& db, const data::GroupInfo& gi,
                int axes) {
  Space space;
  for (int a = 0; a < axes; ++a) {
    RootBounds rb = ComputeRootBounds(db, a, gi.base_selection());
    space.bounds.push_back({a, rb.lo, rb.hi});
  }
  space.rows = gi.base_selection();
  return space;
}

// Fused kernel == naive FindCombs + CountGroups on random data, for
// several seeds, axis counts and missing-value rates — and recursively
// down a few levels so child cells (non-root bounds, shrinking
// selections) are exercised too.
TEST(SplitKernelTest, MatchesNaiveOnSeededRandomData) {
  for (uint64_t seed : {3u, 17u, 99u}) {
    for (int axes : {1, 2, 3}) {
      for (double missing : {0.0, 0.15}) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " axes " +
                     std::to_string(axes) + " missing " +
                     std::to_string(missing));
        data::Dataset db = MakeRandom(seed, 400, axes, 3, missing);
        auto gi = data::GroupInfo::Create(db, axes);  // grp attr
        ASSERT_TRUE(gi.ok());

        SplitScratch scratch;
        std::vector<Space> frontier = {RootSpace(db, *gi, axes)};
        for (int level = 0; level < 3 && !frontier.empty(); ++level) {
          std::vector<Space> next;
          for (const Space& space : frontier) {
            std::vector<double> cuts = PartitionMedians(db, space);
            SplitResult fused =
                SplitAndCount(db, *gi, space, cuts, &scratch);
            NaiveResult naive = NaiveSplitAndCount(db, *gi, space, cuts);
            ExpectIdentical(fused, naive);
            for (Space& cell : fused.cells) {
              if (cell.rows.size() >= 8) next.push_back(std::move(cell));
            }
          }
          frontier = std::move(next);
        }
      }
    }
  }
}

// Same equivalence under the one-vs-rest group layout (group codes 0/1
// over a many-valued attribute, some rows excluded as -1).
TEST(SplitKernelTest, MatchesNaiveOneVsRestLayout) {
  data::Dataset db = MakeRandom(7, 500, 2, 6, 0.1);
  auto gi = data::GroupInfo::CreateOneVsRest(db, 2, "g0");
  ASSERT_TRUE(gi.ok());
  Space space = RootSpace(db, *gi, 2);
  std::vector<double> cuts = PartitionMedians(db, space);
  SplitScratch scratch;
  SplitResult fused = SplitAndCount(db, *gi, space, cuts, &scratch);
  ExpectIdentical(fused, NaiveSplitAndCount(db, *gi, space, cuts));
}

// Equivalence under a subset-of-values layout, where excluded rows sit
// inside the selection range as -1 codes.
TEST(SplitKernelTest, MatchesNaiveForValuesLayout) {
  data::Dataset db = MakeRandom(23, 500, 2, 5, 0.05);
  auto gi = data::GroupInfo::CreateForValues(db, 2, {"g1", "g3"});
  ASSERT_TRUE(gi.ok());
  Space space = RootSpace(db, *gi, 2);
  std::vector<double> cuts = PartitionMedians(db, space);
  SplitScratch scratch;
  SplitResult fused = SplitAndCount(db, *gi, space, cuts, &scratch);
  ExpectIdentical(fused, NaiveSplitAndCount(db, *gi, space, cuts));
}

// Rows of the selection that fall outside the space's bounds (or are
// missing) must be dropped by both kernels. Constructing the space with
// narrowed bounds over the full base selection exercises the
// inside-parent rejection that the recursion normally guarantees.
TEST(SplitKernelTest, MatchesNaiveWhenSelectionExceedsBounds) {
  data::Dataset db = MakeRandom(41, 300, 2, 3, 0.2);
  auto gi = data::GroupInfo::Create(db, 2);
  ASSERT_TRUE(gi.ok());
  Space space;
  space.bounds = {{0, -4.0, 5.0}, {1, -2.0, 8.0}};
  space.rows = gi->base_selection();
  std::vector<double> cuts = PartitionMedians(db, space);
  SplitScratch scratch;
  SplitResult fused = SplitAndCount(db, *gi, space, cuts, &scratch);
  ExpectIdentical(fused, NaiveSplitAndCount(db, *gi, space, cuts));
}

// One scratch arena reused across different spaces must give the same
// answers as a fresh arena each call (buffers carry no state between
// calls).
TEST(SplitKernelTest, ScratchReuseDoesNotLeakState) {
  data::Dataset db = MakeRandom(5, 300, 3, 3, 0.1);
  auto gi = data::GroupInfo::Create(db, 3);
  ASSERT_TRUE(gi.ok());
  SplitScratch reused;
  for (int axes : {3, 1, 2}) {
    Space space = RootSpace(db, *gi, axes);
    std::vector<double> cuts = PartitionMedians(db, space);
    SplitResult with_reuse = SplitAndCount(db, *gi, space, cuts, &reused);
    SplitScratch fresh;
    SplitResult with_fresh = SplitAndCount(db, *gi, space, cuts, &fresh);
    ASSERT_EQ(with_reuse.cells.size(), with_fresh.cells.size());
    for (size_t c = 0; c < with_reuse.cells.size(); ++c) {
      EXPECT_EQ(with_reuse.cells[c].rows.rows(),
                with_fresh.cells[c].rows.rows());
      EXPECT_EQ(with_reuse.counts[c].counts, with_fresh.counts[c].counts);
    }
  }
}

// No splittable axis (all cuts NaN) -> empty result from both paths.
TEST(SplitKernelTest, EmptyWhenNoAxisSplittable) {
  data::Dataset db = MakeRandom(11, 50, 2, 2, 0.0);
  auto gi = data::GroupInfo::Create(db, 2);
  ASSERT_TRUE(gi.ok());
  Space space = RootSpace(db, *gi, 2);
  std::vector<double> cuts = {std::nan(""), std::nan("")};
  SplitScratch scratch;
  SplitResult fused = SplitAndCount(db, *gi, space, cuts, &scratch);
  EXPECT_TRUE(fused.cells.empty());
  EXPECT_TRUE(fused.counts.empty());
  EXPECT_TRUE(FindCombs(db, space, cuts).empty());
}

// More splittable axes than kMaxSplitAxes: the shared SplittableAxes
// helper caps the list (keeping the first kMaxSplitAxes) instead of
// shifting past the machine word.
TEST(SplitKernelTest, SplittableAxesCappedAtMax) {
  std::vector<double> cuts(kMaxSplitAxes + 8, 0.5);
  std::vector<int> axes = SplittableAxes(cuts);
  ASSERT_EQ(axes.size(), kMaxSplitAxes);
  for (size_t i = 0; i < axes.size(); ++i) {
    EXPECT_EQ(axes[i], static_cast<int>(i));
  }
  cuts[3] = std::nan("");
  axes = SplittableAxes(cuts);
  ASSERT_EQ(axes.size(), kMaxSplitAxes);
  EXPECT_EQ(axes[3], 4);  // NaN axis skipped, next axis takes its place
}

}  // namespace
}  // namespace sdadcs::core
