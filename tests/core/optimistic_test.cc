#include "core/optimistic.h"

#include <gtest/gtest.h>

#include "stats/chi_squared.h"

namespace sdadcs::core {
namespace {

TEST(MaxInstancesChildTest, MatchesEquationSix) {
  // |DB| / (2^(level+1) * |ca|).
  EXPECT_DOUBLE_EQ(MaxInstancesChild(100, 1, 1), 25.0);
  EXPECT_DOUBLE_EQ(MaxInstancesChild(100, 2, 1), 12.5);
  EXPECT_DOUBLE_EQ(MaxInstancesChild(100, 1, 2), 12.5);
  EXPECT_DOUBLE_EQ(MaxInstancesChild(1000, 3, 5), 1000.0 / (16 * 5));
}

TEST(OptimisticMeasureTest, PaperSectionFourFourExample) {
  // Figure 2 walk-through: 100 rows, 2% group A. The right half-space
  // holds 2 A's and 48 B's; the paper computes oe = 1 - 23/98 = 0.7653.
  OptimisticInput in;
  in.db_size = 100;
  in.level = 1;
  in.num_continuous = 1;
  in.counts = {2, 48};        // A, B
  in.space_total = 50;
  in.group_sizes = {2, 98};
  EXPECT_NEAR(OptimisticMeasure(in), 1.0 - 23.0 / 98.0, 1e-12);
}

TEST(OptimisticMeasureTest, BoundsAchievableChildSupports) {
  // oe bounds the measure of *child* spaces (not the current one): a
  // child holds at most max_child rows, so no child support can exceed
  // max_child / |g|, and the bound reflects that cap.
  OptimisticInput in;
  in.db_size = 1000;
  in.level = 1;
  in.num_continuous = 2;
  in.counts = {120, 300};
  in.space_total = 420;
  in.group_sizes = {500, 500};
  double max_child = MaxInstancesChild(1000, 1, 2);  // 125
  // Best imaginable child: 125 rows all of one group, none of the other.
  EXPECT_DOUBLE_EQ(OptimisticMeasure(in), max_child / 500.0);
}

TEST(OptimisticMeasureTest, ShrinksWithDepth) {
  OptimisticInput in;
  in.db_size = 1000;
  in.num_continuous = 1;
  in.counts = {50, 400};
  in.space_total = 450;
  in.group_sizes = {500, 500};
  in.level = 1;
  double oe1 = OptimisticMeasure(in);
  in.level = 3;
  double oe3 = OptimisticMeasure(in);
  EXPECT_LE(oe3, oe1);
}

TEST(OptimisticMeasureTest, SupportCapAppliesWhenGroupTiny) {
  // A group smaller than the child capacity caps max_supp at the current
  // support (min in Eq. 7), never above 1.
  OptimisticInput in;
  in.db_size = 10000;
  in.level = 1;
  in.num_continuous = 1;
  in.counts = {10, 500};
  in.space_total = 510;
  in.group_sizes = {10, 9990};
  double oe = OptimisticMeasure(in);
  EXPECT_LE(oe, 1.0);
  EXPECT_GT(oe, 0.0);
}

TEST(MaxChildChiSquaredTest, BoundsObservedStatistic) {
  // The bound over specializations is at least the statistic of the
  // current counts (identity specialization is a corner? No — corners
  // are all-or-nothing, but the max over corners dominates any interior
  // point of the feasible box for the presence-table statistic).
  std::vector<double> counts = {80, 20};
  std::vector<double> sizes = {200, 200};
  double bound = MaxChildChiSquared(counts, sizes);
  stats::ChiSquaredResult now = stats::ChiSquaredPresenceTest(counts, sizes);
  ASSERT_TRUE(now.valid);
  EXPECT_GE(bound, now.statistic);
}

TEST(MaxChildChiSquaredTest, ZeroCountsGiveZeroBound) {
  EXPECT_DOUBLE_EQ(MaxChildChiSquared({0, 0}, {100, 100}), 0.0);
}

TEST(MaxChildChiSquaredTest, GrowsWithCounts) {
  std::vector<double> sizes = {1000, 1000};
  double small = MaxChildChiSquared({5, 5}, sizes);
  double large = MaxChildChiSquared({200, 200}, sizes);
  EXPECT_LT(small, large);
}

}  // namespace
}  // namespace sdadcs::core
