// MinerConfig::Fingerprint and the canonical request key: every semantic
// knob must perturb the hash, non-semantic knobs must not, and the
// 128-bit request key must separate dataset versions, group specs and
// engines.

#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/request_key.h"
#include "gtest/gtest.h"

namespace sdadcs::core {
namespace {

TEST(ConfigFingerprintTest, DeterministicAndCopyStable) {
  MinerConfig a;
  MinerConfig b = a;
  EXPECT_EQ(a.Fingerprint(), a.Fingerprint());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

// Every field Validate() range-checks — alpha, delta, max_depth,
// sdad_max_level, top_k, min_coverage, merge_alpha — plus every other
// semantic knob must change the fingerprint, and the perturbed hashes
// must be pairwise distinct (the per-field tags exist exactly so that
// "alpha=0.2" cannot alias "delta=0.2").
TEST(ConfigFingerprintTest, EverySemanticFieldPerturbsTheHash) {
  using Mutator = void (*)(MinerConfig*);
  const std::vector<std::pair<std::string, Mutator>> mutations = {
      {"alpha", [](MinerConfig* c) { c->alpha = 0.01; }},
      {"delta", [](MinerConfig* c) { c->delta = 0.25; }},
      {"max_depth", [](MinerConfig* c) { c->max_depth = 3; }},
      {"sdad_max_level", [](MinerConfig* c) { c->sdad_max_level = 2; }},
      {"top_k", [](MinerConfig* c) { c->top_k = 10; }},
      {"min_coverage", [](MinerConfig* c) { c->min_coverage = 50; }},
      {"merge_alpha", [](MinerConfig* c) { c->merge_alpha = 0.2; }},
      {"measure",
       [](MinerConfig* c) { c->measure = MeasureKind::kEntropyPurity; }},
      {"bonferroni",
       [](MinerConfig* c) { c->bonferroni = BonferroniMode::kNone; }},
      {"split", [](MinerConfig* c) { c->split = SplitKind::kMean; }},
      {"optimistic_pruning",
       [](MinerConfig* c) { c->optimistic_pruning = false; }},
      {"meaningful_pruning",
       [](MinerConfig* c) { c->meaningful_pruning = false; }},
      {"redundancy_pruning",
       [](MinerConfig* c) { c->redundancy_pruning = false; }},
      {"pure_space_pruning",
       [](MinerConfig* c) { c->pure_space_pruning = false; }},
      {"chi_bound_pruning",
       [](MinerConfig* c) { c->chi_bound_pruning = false; }},
      {"productivity_filter",
       [](MinerConfig* c) { c->productivity_filter = false; }},
      {"merge_spaces", [](MinerConfig* c) { c->merge_spaces = false; }},
      {"independently_productive_filter",
       [](MinerConfig* c) { c->independently_productive_filter = false; }},
      {"max_candidates_per_level",
       [](MinerConfig* c) { c->max_candidates_per_level = 1000; }},
      {"attributes", [](MinerConfig* c) { c->attributes = {"age"}; }},
  };

  const uint64_t base = MinerConfig{}.Fingerprint();
  std::set<uint64_t> seen = {base};
  for (const auto& [field, mutate] : mutations) {
    MinerConfig mutated;
    mutate(&mutated);
    const uint64_t h = mutated.Fingerprint();
    EXPECT_NE(h, base) << field << " does not perturb Fingerprint()";
    EXPECT_TRUE(seen.insert(h).second)
        << field << " collides with another single-field mutation";
  }
}

TEST(ConfigFingerprintTest, ColumnarKernelsIsNotSemantic) {
  // The fused kernels are proven byte-identical to the naive pipeline by
  // the differential tests, so both settings may share a cache entry.
  MinerConfig fused;
  fused.columnar_kernels = true;
  MinerConfig naive;
  naive.columnar_kernels = false;
  EXPECT_EQ(fused.Fingerprint(), naive.Fingerprint());
}

TEST(ConfigFingerprintTest, KernelAndSeedSampleRowsAreNotSemantic) {
  // Both knobs are speed-only: the vectorized kernel is byte-identical
  // to the scalar one (differential tests), and sample-seeded bounds are
  // guarded so they can only change node counts, never results. All
  // settings may therefore share a cache entry.
  MinerConfig base;
  MinerConfig scalar;
  scalar.kernel = KernelKind::kScalar;
  MinerConfig avx2;
  avx2.kernel = KernelKind::kAvx2;
  MinerConfig seeded;
  seeded.seed_sample_rows = 500;
  EXPECT_EQ(base.Fingerprint(), scalar.Fingerprint());
  EXPECT_EQ(base.Fingerprint(), avx2.Fingerprint());
  EXPECT_EQ(base.Fingerprint(), seeded.Fingerprint());
}

TEST(ConfigFingerprintTest, NanMergeAlphaIsCanonical) {
  MinerConfig a;
  a.merge_alpha = std::nan("1");
  MinerConfig b;
  b.merge_alpha = std::nan("0x7ff");  // different payload, same meaning
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  MinerConfig set;
  set.merge_alpha = 0.05;
  EXPECT_NE(a.Fingerprint(), set.Fingerprint());
}

TEST(ConfigFingerprintTest, AttributeOrderAndContentMatter) {
  MinerConfig ab;
  ab.attributes = {"a", "b"};
  MinerConfig ba;
  ba.attributes = {"b", "a"};
  MinerConfig joined;
  joined.attributes = {"ab"};
  EXPECT_NE(ab.Fingerprint(), ba.Fingerprint());
  EXPECT_NE(ab.Fingerprint(), joined.Fingerprint());
}

TEST(RequestKeyTest, SeparatesEveryDimension) {
  const MinerConfig config;
  const uint64_t ds = DatasetFingerprint("adult", 1);
  const RequestKey base = CanonicalRequestKey(ds, config, "class", {},
                                              EngineKind::kSerial);

  EXPECT_EQ(base, CanonicalRequestKey(ds, config, "class", {},
                                      EngineKind::kSerial));

  // Dataset version: same name, new load generation.
  EXPECT_NE(base,
            CanonicalRequestKey(DatasetFingerprint("adult", 2), config,
                                "class", {}, EngineKind::kSerial));
  // Config.
  MinerConfig other = config;
  other.top_k = 7;
  EXPECT_NE(base, CanonicalRequestKey(ds, other, "class", {},
                                      EngineKind::kSerial));
  // Group attribute.
  EXPECT_NE(base, CanonicalRequestKey(ds, config, "sex", {},
                                      EngineKind::kSerial));
  // Group values, including their order (it fixes group numbering and
  // therefore the sign of support differences).
  const RequestKey ab = CanonicalRequestKey(ds, config, "class", {"a", "b"},
                                            EngineKind::kSerial);
  const RequestKey ba = CanonicalRequestKey(ds, config, "class", {"b", "a"},
                                            EngineKind::kSerial);
  EXPECT_NE(base, ab);
  EXPECT_NE(ab, ba);
  // Engine: serial and parallel are distinct cache universes, and an
  // unresolved kAuto hashes apart from both.
  const RequestKey parallel = CanonicalRequestKey(ds, config, "class", {},
                                                  EngineKind::kParallel);
  const RequestKey automatic = CanonicalRequestKey(ds, config, "class", {},
                                                   EngineKind::kAuto);
  EXPECT_NE(base, parallel);
  EXPECT_NE(base, automatic);
  EXPECT_NE(parallel, automatic);
}

TEST(RequestKeyTest, DatasetFingerprintSeparatesNameAndGeneration) {
  EXPECT_NE(DatasetFingerprint("adult", 1), DatasetFingerprint("adult", 2));
  EXPECT_NE(DatasetFingerprint("adult", 1), DatasetFingerprint("breast", 1));
  EXPECT_EQ(DatasetFingerprint("adult", 1), DatasetFingerprint("adult", 1));
}

TEST(RequestKeyTest, ToStringIsStableHex) {
  RequestKey key{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(key.ToString(), "0123456789abcdef:fedcba9876543210");
}

}  // namespace
}  // namespace sdadcs::core
