#include "core/pruning.h"

#include <gtest/gtest.h>

namespace sdadcs::core {
namespace {

TEST(PruneTableTest, ExactMatchPrunes) {
  PruneTable table;
  Itemset entry({Item::Categorical(0, 1)});
  table.Insert(entry, PruneReason::kMinSupport);
  PruneReason reason;
  EXPECT_TRUE(table.CanPrune(entry, &reason));
  EXPECT_EQ(reason, PruneReason::kMinSupport);
  EXPECT_EQ(table.size(), 1u);
}

TEST(PruneTableTest, SupersetOfPrunedEntryIsPruned) {
  PruneTable table;
  table.Insert(Itemset({Item::Categorical(0, 1)}), PruneReason::kPure);
  Itemset candidate(
      {Item::Categorical(0, 1), Item::Interval(2, 0.0, 5.0)});
  EXPECT_TRUE(table.CanPrune(candidate));
}

TEST(PruneTableTest, SubIntervalOfPrunedRegionIsPruned) {
  PruneTable table;
  table.Insert(Itemset({Item::Interval(1, 0.0, 10.0)}),
               PruneReason::kMinSupport);
  EXPECT_TRUE(table.CanPrune(Itemset({Item::Interval(1, 2.0, 5.0)})));
  // Overlapping-but-not-contained interval must NOT be pruned.
  EXPECT_FALSE(table.CanPrune(Itemset({Item::Interval(1, 5.0, 12.0)})));
}

TEST(PruneTableTest, DifferentCategoricalValueNotPruned) {
  PruneTable table;
  table.Insert(Itemset({Item::Categorical(0, 1)}), PruneReason::kPure);
  EXPECT_FALSE(table.CanPrune(Itemset({Item::Categorical(0, 2)})));
}

TEST(PruneTableTest, MixedContainment) {
  PruneTable table;
  table.Insert(
      Itemset({Item::Categorical(0, 3), Item::Interval(1, 0.0, 4.0)}),
      PruneReason::kRedundant);
  // Specialization in both items -> pruned.
  EXPECT_TRUE(table.CanPrune(Itemset({Item::Categorical(0, 3),
                                      Item::Interval(1, 1.0, 2.0),
                                      Item::Categorical(2, 0)})));
  // Interval outside the region -> kept.
  EXPECT_FALSE(table.CanPrune(Itemset(
      {Item::Categorical(0, 3), Item::Interval(1, 3.0, 9.0)})));
}

TEST(PruneTableTest, EmptyTableNeverPrunes) {
  PruneTable table;
  EXPECT_FALSE(table.CanPrune(Itemset({Item::Categorical(0, 0)})));
}

TEST(PruneTableTest, ParentChainConsulted) {
  PruneTable parent;
  parent.Insert(Itemset({Item::Categorical(0, 1)}),
                PruneReason::kMinSupport);
  PruneTable child;
  child.set_parent(&parent);
  EXPECT_TRUE(child.CanPrune(Itemset({Item::Categorical(0, 1)})));
  // Inserts stay local: parent unaffected.
  child.Insert(Itemset({Item::Categorical(0, 2)}), PruneReason::kPure);
  EXPECT_FALSE(parent.CanPrune(Itemset({Item::Categorical(0, 2)})));
  EXPECT_TRUE(child.CanPrune(Itemset({Item::Categorical(0, 2)})));
}

TEST(PruneTableTest, MergeFromAddsEntries) {
  PruneTable a;
  a.Insert(Itemset({Item::Categorical(0, 1)}), PruneReason::kPure);
  PruneTable b;
  b.Insert(Itemset({Item::Categorical(1, 0)}), PruneReason::kRedundant);
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.CanPrune(Itemset({Item::Categorical(1, 0)})));
}

TEST(BelowMinimumDeviationTest, AllBelowDelta) {
  EXPECT_TRUE(BelowMinimumDeviation({0.05, 0.09}, 0.1));
  EXPECT_FALSE(BelowMinimumDeviation({0.05, 0.30}, 0.1));
  EXPECT_FALSE(BelowMinimumDeviation({0.1, 0.05}, 0.1));  // 0.1 >= delta
}

TEST(LowExpectedCountTest, SmallCellsDetected) {
  // 4 matches out of 1000/1000: expected match count per group = 2 < 5.
  EXPECT_TRUE(LowExpectedCount({2, 2}, {1000, 1000}));
  EXPECT_FALSE(LowExpectedCount({300, 200}, {1000, 1000}));
}

TEST(StatisticallySameDifferenceTest, IdenticalDifferencesAreSame) {
  EXPECT_TRUE(StatisticallySameDifference(
      0.30, 0.30, {0.5, 0.2}, {500, 500}, 0.05));
}

TEST(StatisticallySameDifferenceTest, LargeDeviationDiffers) {
  EXPECT_FALSE(StatisticallySameDifference(
      0.60, 0.30, {0.5, 0.2}, {500, 500}, 0.05));
}

TEST(StatisticallySameDifferenceTest, WidthShrinksWithSampleSize) {
  // A deviation inside the bound for small groups falls outside it for
  // large groups (CLT: the standard error shrinks).
  double diff_curr = 0.34;
  double diff_sub = 0.30;
  std::vector<double> supports = {0.5, 0.2};
  EXPECT_TRUE(StatisticallySameDifference(diff_curr, diff_sub, supports,
                                          {200, 200}, 0.05));
  EXPECT_FALSE(StatisticallySameDifference(diff_curr, diff_sub, supports,
                                           {100000, 100000}, 0.05));
}

TEST(PruneReasonNameTest, Stable) {
  EXPECT_STREQ(PruneReasonName(PruneReason::kMinSupport), "min_support");
  EXPECT_STREQ(PruneReasonName(PruneReason::kPure), "pure");
  EXPECT_STREQ(PruneReasonName(PruneReason::kChiBound), "chi_bound");
}

}  // namespace
}  // namespace sdadcs::core
