#include "core/stucco.h"

#include <set>

#include <gtest/gtest.h>

#include "common/requests.h"
#include "core/miner.h"
#include "util/logging.h"
#include "util/random.h"

namespace sdadcs::core {
namespace {

using test_support::GroupsRequest;

struct Fixture {
  data::Dataset db;
  data::GroupInfo gi;
};

// Categorical-only dataset: color=red marks group a strongly; shape is
// noise; the conjunction {red, circle} adds nothing over {red}.
Fixture MakeFixture(int n = 1200) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int color = b.AddCategorical("color");
  int shape = b.AddCategorical("shape");
  int noise = b.AddContinuous("noise");  // must be ignored by STUCCO
  util::Rng rng(41);
  for (int i = 0; i < n; ++i) {
    bool in_a = i % 2 == 0;
    b.AppendCategorical(g, in_a ? "a" : "b");
    b.AppendCategorical(color,
                        rng.Bernoulli(in_a ? 0.7 : 0.2) ? "red" : "blue");
    b.AppendCategorical(shape, rng.Bernoulli(0.5) ? "circle" : "square");
    b.AppendContinuous(noise, rng.NextDouble());
  }
  auto db = std::move(b).Build();
  SDADCS_CHECK(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  SDADCS_CHECK(gi.ok());
  return {std::move(db).value(), std::move(gi).value()};
}

TEST(StuccoTest, FindsThePlantedContrast) {
  Fixture f = MakeFixture();
  StuccoResult result = MineStucco(f.db, f.gi, StuccoConfig());
  ASSERT_FALSE(result.contrasts.empty());
  const ContrastPattern& top = result.contrasts.front();
  ASSERT_EQ(top.itemset.size(), 1u);
  EXPECT_EQ(f.db.schema().attribute(top.itemset.item(0).attr).name,
            "color");
  EXPECT_NEAR(top.diff, 0.5, 0.08);
}

TEST(StuccoTest, IgnoresContinuousAttributes) {
  Fixture f = MakeFixture();
  StuccoResult result = MineStucco(f.db, f.gi, StuccoConfig());
  for (const ContrastPattern& p : result.contrasts) {
    for (const Item& it : p.itemset.items()) {
      EXPECT_EQ(it.kind, Item::Kind::kCategorical);
    }
  }
}

TEST(StuccoTest, AllReportedAreLargeAndSignificant) {
  Fixture f = MakeFixture();
  StuccoConfig cfg;
  StuccoResult result = MineStucco(f.db, f.gi, cfg);
  for (const ContrastPattern& p : result.contrasts) {
    EXPECT_GT(p.diff, cfg.delta);
    EXPECT_LT(p.p_value, cfg.alpha);  // Bonferroni level is stricter
  }
}

TEST(StuccoTest, DepthLimitRespected) {
  Fixture f = MakeFixture();
  StuccoConfig cfg;
  cfg.max_depth = 1;
  StuccoResult result = MineStucco(f.db, f.gi, cfg);
  for (const ContrastPattern& p : result.contrasts) {
    EXPECT_EQ(p.itemset.size(), 1u);
  }
}

TEST(StuccoTest, SupportPruningCountsAccumulate) {
  Fixture f = MakeFixture();
  StuccoConfig cfg;
  cfg.delta = 0.4;  // most itemsets fall below
  StuccoResult result = MineStucco(f.db, f.gi, cfg);
  EXPECT_GT(result.itemsets_evaluated, 0u);
  EXPECT_GT(result.pruned_support, 0u);
}

TEST(StuccoTest, NoContrastOnLabelNoise) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int c = b.AddCategorical("c");
  util::Rng rng(43);
  for (int i = 0; i < 800; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    b.AppendCategorical(c, rng.Bernoulli(0.5) ? "x" : "y");
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  ASSERT_TRUE(gi.ok());
  StuccoResult result = MineStucco(*db, *gi, StuccoConfig());
  EXPECT_TRUE(result.contrasts.empty());
}

TEST(StuccoTest, AgreesWithLatticeSearchOnCategoricalData) {
  // Differential oracle: on categorical-only data the lattice search in
  // NP mode and STUCCO implement the same contract (large + significant
  // itemsets); STUCCO's Bonferroni correction is strictly harsher
  // (divides by the candidate count too), so its output must be a
  // subset of the lattice's.
  Fixture f = MakeFixture();
  StuccoConfig scfg;
  StuccoResult stucco = MineStucco(f.db, f.gi, scfg);

  MinerConfig mcfg;
  mcfg.max_depth = scfg.max_depth;
  mcfg.meaningful_pruning = false;
  mcfg.optimistic_pruning = false;
  auto lattice = Miner(mcfg).Mine(f.db, GroupsRequest(f.gi));
  ASSERT_TRUE(lattice.ok());

  std::set<std::string> lattice_keys;
  for (const ContrastPattern& p : lattice->contrasts) {
    lattice_keys.insert(p.itemset.Key());
  }
  ASSERT_FALSE(stucco.contrasts.empty());
  for (const ContrastPattern& p : stucco.contrasts) {
    EXPECT_TRUE(lattice_keys.count(p.itemset.Key()) > 0)
        << p.itemset.ToString(f.db);
  }
  // And they agree on the winner.
  EXPECT_EQ(stucco.contrasts.front().itemset.Key(),
            lattice->contrasts.front().itemset.Key());
}

TEST(StuccoTest, SortedByDifference) {
  Fixture f = MakeFixture();
  StuccoResult result = MineStucco(f.db, f.gi, StuccoConfig());
  for (size_t i = 1; i < result.contrasts.size(); ++i) {
    EXPECT_GE(result.contrasts[i - 1].measure, result.contrasts[i].measure);
  }
}

}  // namespace
}  // namespace sdadcs::core
