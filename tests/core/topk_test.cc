#include "core/topk.h"

#include <gtest/gtest.h>

namespace sdadcs::core {
namespace {

ContrastPattern MakePattern(int attr, double measure) {
  ContrastPattern p;
  p.itemset = Itemset({Item::Categorical(attr, 0)});
  p.measure = measure;
  return p;
}

TEST(TopKTest, ThresholdIsFloorUntilFull) {
  TopK topk(3, 0.1);
  EXPECT_DOUBLE_EQ(topk.threshold(), 0.1);
  topk.Insert(MakePattern(0, 0.5));
  topk.Insert(MakePattern(1, 0.6));
  EXPECT_DOUBLE_EQ(topk.threshold(), 0.1);
  topk.Insert(MakePattern(2, 0.7));
  EXPECT_TRUE(topk.full());
  EXPECT_DOUBLE_EQ(topk.threshold(), 0.5);
}

TEST(TopKTest, EvictsWeakest) {
  TopK topk(2, 0.0);
  topk.Insert(MakePattern(0, 0.2));
  topk.Insert(MakePattern(1, 0.8));
  topk.Insert(MakePattern(2, 0.5));
  std::vector<ContrastPattern> sorted = topk.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_DOUBLE_EQ(sorted[0].measure, 0.8);
  EXPECT_DOUBLE_EQ(sorted[1].measure, 0.5);
}

TEST(TopKTest, RejectsWhenFullAndWeaker) {
  TopK topk(1, 0.0);
  EXPECT_TRUE(topk.Insert(MakePattern(0, 0.9)));
  EXPECT_FALSE(topk.Insert(MakePattern(1, 0.3)));
  EXPECT_EQ(topk.size(), 1u);
}

TEST(TopKTest, DeduplicatesByItemset) {
  TopK topk(5, 0.0);
  EXPECT_TRUE(topk.Insert(MakePattern(0, 0.5)));
  EXPECT_FALSE(topk.Insert(MakePattern(0, 0.9)));  // same itemset key
  EXPECT_EQ(topk.size(), 1u);
}

TEST(TopKTest, EvictedKeyCanReenter) {
  TopK topk(1, 0.0);
  topk.Insert(MakePattern(0, 0.2));
  topk.Insert(MakePattern(1, 0.8));  // evicts attr-0 pattern
  EXPECT_TRUE(topk.Insert(MakePattern(0, 0.9)));
  EXPECT_DOUBLE_EQ(topk.Sorted()[0].measure, 0.9);
}

TEST(TopKTest, SeedFloorRaisesThresholdWithoutHoldingPatterns) {
  TopK topk(3, 0.1);
  topk.SeedFloor(0.4);
  // The seeded floor dominates the base floor even though the heap is
  // not full, but it holds no patterns of its own.
  EXPECT_DOUBLE_EQ(topk.threshold(), 0.4);
  EXPECT_EQ(topk.size(), 0u);
  EXPECT_DOUBLE_EQ(topk.seed_floor(), 0.4);
  // Weaker seeds never lower an established floor.
  topk.SeedFloor(0.2);
  EXPECT_DOUBLE_EQ(topk.threshold(), 0.4);
  // Once the heap fills past the seed, the k-th measure takes over.
  topk.Insert(MakePattern(0, 0.5));
  topk.Insert(MakePattern(1, 0.6));
  topk.Insert(MakePattern(2, 0.7));
  EXPECT_DOUBLE_EQ(topk.threshold(), 0.5);
}

TEST(TopKTest, SeedFloorStillAppliesWhenFullButWeak) {
  // A full heap whose k-th measure sits below the seed keeps pruning at
  // the seed level; the guard in the miners makes this safe.
  TopK topk(2, 0.0);
  topk.SeedFloor(0.6);
  topk.Insert(MakePattern(0, 0.9));
  topk.Insert(MakePattern(1, 0.7));
  EXPECT_TRUE(topk.full());
  EXPECT_DOUBLE_EQ(topk.threshold(), 0.7);
  TopK weak(2, 0.0);
  weak.SeedFloor(0.6);
  weak.Insert(MakePattern(0, 0.3));
  weak.Insert(MakePattern(1, 0.2));
  EXPECT_TRUE(weak.full());
  EXPECT_DOUBLE_EQ(weak.threshold(), 0.6);
}

TEST(TopKTest, VersionAndBestMeasureAreMonotone) {
  TopK topk(2, 0.0);
  EXPECT_EQ(topk.version(), 0u);
  EXPECT_DOUBLE_EQ(topk.best_measure(), 0.0);
  topk.Insert(MakePattern(0, 0.5));
  uint64_t v1 = topk.version();
  EXPECT_GT(v1, 0u);
  EXPECT_DOUBLE_EQ(topk.best_measure(), 0.5);
  // Rejected insert (duplicate key) leaves both untouched.
  topk.Insert(MakePattern(0, 0.9));
  EXPECT_EQ(topk.version(), v1);
  EXPECT_DOUBLE_EQ(topk.best_measure(), 0.5);
  // An accepted weaker pattern bumps the version but not the best.
  topk.Insert(MakePattern(1, 0.3));
  EXPECT_GT(topk.version(), v1);
  EXPECT_DOUBLE_EQ(topk.best_measure(), 0.5);
  // Eviction of the weakest never decreases best_measure.
  topk.Insert(MakePattern(2, 0.8));
  EXPECT_DOUBLE_EQ(topk.best_measure(), 0.8);
}

TEST(TopKTest, SortedIsDescending) {
  TopK topk(10, 0.0);
  for (int i = 0; i < 7; ++i) {
    topk.Insert(MakePattern(i, 0.1 * i));
  }
  std::vector<ContrastPattern> sorted = topk.Sorted();
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i - 1].measure, sorted[i].measure);
  }
}

}  // namespace
}  // namespace sdadcs::core
