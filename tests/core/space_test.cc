#include "core/space.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sdadcs::core {
namespace {

data::Dataset MakeGrid() {
  // x = 1..8, y = 10, 20, ..., 80.
  data::DatasetBuilder b;
  int x = b.AddContinuous("x");
  int y = b.AddContinuous("y");
  for (int i = 1; i <= 8; ++i) {
    b.AppendContinuous(x, i);
    b.AppendContinuous(y, i * 10.0);
  }
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(ComputeRootBoundsTest, IntegralDataGetsMinMinusOne) {
  data::Dataset db = MakeGrid();
  RootBounds rb = ComputeRootBounds(db, 0, data::Selection::All(8));
  EXPECT_DOUBLE_EQ(rb.lo, 0.0);  // min 1 -> display lo 0
  EXPECT_DOUBLE_EQ(rb.hi, 8.0);
}

TEST(ComputeRootBoundsTest, FractionalDataGetsEpsilonBelow) {
  data::DatasetBuilder b;
  int x = b.AddContinuous("x");
  b.AppendContinuous(x, 0.25);
  b.AppendContinuous(x, 0.75);
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  RootBounds rb = ComputeRootBounds(*db, 0, data::Selection::All(2));
  EXPECT_LT(rb.lo, 0.25);
  EXPECT_GT(rb.lo, 0.25 - 0.01);
  EXPECT_DOUBLE_EQ(rb.hi, 0.75);
}

TEST(PartitionMediansTest, SplitsAtLowerMedian) {
  data::Dataset db = MakeGrid();
  Space space;
  space.bounds = {{0, 0.0, 8.0}};
  space.rows = data::Selection::All(8);
  std::vector<double> m = PartitionMedians(db, space);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m[0], 4.0);  // lower middle of 1..8
}

TEST(PartitionMediansTest, ConstantAxisUnsplittable) {
  data::DatasetBuilder b;
  int x = b.AddContinuous("x");
  for (int i = 0; i < 5; ++i) b.AppendContinuous(x, 7.0);
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  Space space;
  space.bounds = {{0, 6.0, 7.0}};
  space.rows = data::Selection::All(5);
  std::vector<double> m = PartitionMedians(*db, space);
  EXPECT_TRUE(std::isnan(m[0]));
}

TEST(FindCombsTest, OneAxisTwoCells) {
  data::Dataset db = MakeGrid();
  Space space;
  space.bounds = {{0, 0.0, 8.0}};
  space.rows = data::Selection::All(8);
  std::vector<Space> cells = FindCombs(db, space, {4.0});
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].rows.size(), 4u);  // x in (0,4]
  EXPECT_EQ(cells[1].rows.size(), 4u);  // x in (4,8]
  EXPECT_DOUBLE_EQ(cells[0].bounds[0].hi, 4.0);
  EXPECT_DOUBLE_EQ(cells[1].bounds[0].lo, 4.0);
}

TEST(FindCombsTest, TwoAxesFourCells) {
  data::Dataset db = MakeGrid();
  Space space;
  space.bounds = {{0, 0.0, 8.0}, {1, 9.0, 80.0}};
  space.rows = data::Selection::All(8);
  std::vector<Space> cells = FindCombs(db, space, {4.0, 40.0});
  ASSERT_EQ(cells.size(), 4u);
  size_t total = 0;
  for (const Space& c : cells) total += c.rows.size();
  EXPECT_EQ(total, 8u);  // partition covers all rows exactly once
  // With x and y perfectly correlated, off-diagonal cells are empty.
  EXPECT_EQ(cells[0].rows.size(), 4u);  // low-low
  EXPECT_EQ(cells[1].rows.size(), 0u);  // high-x low-y
  EXPECT_EQ(cells[2].rows.size(), 0u);
  EXPECT_EQ(cells[3].rows.size(), 4u);
}

TEST(FindCombsTest, UnsplittableAxisKeptWhole) {
  data::Dataset db = MakeGrid();
  Space space;
  space.bounds = {{0, 0.0, 8.0}, {1, 9.0, 80.0}};
  space.rows = data::Selection::All(8);
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Space> cells = FindCombs(db, space, {4.0, kNan});
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cells[0].bounds[1].lo, 9.0);
  EXPECT_DOUBLE_EQ(cells[0].bounds[1].hi, 80.0);
}

TEST(FindCombsTest, NoSplittableAxisReturnsEmpty) {
  data::Dataset db = MakeGrid();
  Space space;
  space.bounds = {{0, 0.0, 8.0}};
  space.rows = data::Selection::All(8);
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(FindCombs(db, space, {kNan}).empty());
}

TEST(HyperVolumeTest, NormalizedProduct) {
  std::vector<AxisBound> bounds = {{0, 0.0, 4.0}, {1, 9.0, 44.5}};
  std::vector<RootBounds> roots = {{0.0, 8.0}, {9.0, 80.0}};
  EXPECT_DOUBLE_EQ(HyperVolume(bounds, roots), 0.5 * (35.5 / 71.0));
}

TEST(HyperVolumeTest, FullSpaceIsOne) {
  std::vector<AxisBound> bounds = {{0, 0.0, 8.0}};
  std::vector<RootBounds> roots = {{0.0, 8.0}};
  EXPECT_DOUBLE_EQ(HyperVolume(bounds, roots), 1.0);
}

TEST(IntervalItemsTest, OnePerAxis) {
  std::vector<Item> items = IntervalItems({{3, 0.0, 4.0}, {7, 1.0, 2.0}});
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].attr, 3);
  EXPECT_EQ(items[1].attr, 7);
  EXPECT_DOUBLE_EQ(items[1].hi, 2.0);
  EXPECT_EQ(items[0].kind, Item::Kind::kInterval);
}

}  // namespace
}  // namespace sdadcs::core
