#include "core/config.h"

#include <gtest/gtest.h>

#include "common/requests.h"
#include "core/miner.h"
#include "synth/uci_like.h"

namespace sdadcs::core {
namespace {

using test_support::GroupRequest;

TEST(AlphaForLevelTest, PerLevelHalving) {
  MinerConfig cfg;
  cfg.alpha = 0.05;
  cfg.bonferroni = BonferroniMode::kPerLevel;
  EXPECT_DOUBLE_EQ(cfg.AlphaForLevel(0), 0.05);
  EXPECT_DOUBLE_EQ(cfg.AlphaForLevel(1), 0.025);
  EXPECT_DOUBLE_EQ(cfg.AlphaForLevel(3), 0.00625);
}

TEST(AlphaForLevelTest, NoneKeepsAlpha) {
  MinerConfig cfg;
  cfg.alpha = 0.05;
  cfg.bonferroni = BonferroniMode::kNone;
  EXPECT_DOUBLE_EQ(cfg.AlphaForLevel(5), 0.05);
}

TEST(FineGrainedSwitchesTest, GatedByMasterSwitch) {
  MinerConfig cfg;
  EXPECT_TRUE(cfg.RedundancyPruningOn());
  EXPECT_TRUE(cfg.PureSpacePruningOn());
  EXPECT_TRUE(cfg.ChiBoundPruningOn());
  EXPECT_TRUE(cfg.ProductivityFilterOn());
  cfg.meaningful_pruning = false;
  EXPECT_FALSE(cfg.RedundancyPruningOn());
  EXPECT_FALSE(cfg.PureSpacePruningOn());
  EXPECT_FALSE(cfg.ChiBoundPruningOn());
  EXPECT_FALSE(cfg.ProductivityFilterOn());
}

class SwitchCounters : public testing::Test {
 protected:
  static MiningCounters Run(MinerConfig cfg) {
    static synth::NamedDataset* adult = [] {
      return new synth::NamedDataset(synth::MakeAdultLike());
    }();
    cfg.max_depth = 2;
    cfg.attributes = {"age", "hours_per_week", "occupation", "sex"};
    Miner miner(cfg);
    auto result = miner.Mine(
        adult->db, GroupRequest(adult->group_attr, adult->groups));
    EXPECT_TRUE(result.ok());
    return result->counters;
  }
};

TEST_F(SwitchCounters, DefaultsExerciseEveryRule) {
  MiningCounters c = Run(MinerConfig());
  EXPECT_GT(c.pruned_redundant, 0u);
  EXPECT_GT(c.pruned_pure, 0u);
  EXPECT_GT(c.unproductive, 0u);
}

TEST_F(SwitchCounters, RedundancyOff) {
  MinerConfig cfg;
  cfg.redundancy_pruning = false;
  MiningCounters c = Run(cfg);
  EXPECT_EQ(c.pruned_redundant, 0u);
}

TEST_F(SwitchCounters, PureOff) {
  MinerConfig cfg;
  cfg.pure_space_pruning = false;
  MiningCounters c = Run(cfg);
  EXPECT_EQ(c.pruned_pure, 0u);
}

TEST_F(SwitchCounters, ChiBoundOff) {
  MinerConfig cfg;
  cfg.chi_bound_pruning = false;
  MiningCounters c = Run(cfg);
  EXPECT_EQ(c.pruned_oe_chi2, 0u);
}

TEST_F(SwitchCounters, ProductivityOff) {
  MinerConfig cfg;
  cfg.productivity_filter = false;
  MiningCounters c = Run(cfg);
  EXPECT_EQ(c.unproductive, 0u);
}

TEST_F(SwitchCounters, IndependentlyProductiveOff) {
  MinerConfig cfg;
  cfg.independently_productive_filter = false;
  MiningCounters c = Run(cfg);
  EXPECT_EQ(c.not_independently_productive, 0u);
}

TEST_F(SwitchCounters, OptimisticOffExploresMore) {
  MiningCounters with = Run(MinerConfig());
  MinerConfig cfg;
  cfg.optimistic_pruning = false;
  MiningCounters without = Run(cfg);
  EXPECT_EQ(without.pruned_oe_measure, 0u);
  EXPECT_GE(without.partitions_evaluated, with.partitions_evaluated);
}

TEST_F(SwitchCounters, CandidateCapTruncatesVisibly) {
  MinerConfig cfg;
  cfg.max_candidates_per_level = 2;
  MiningCounters c = Run(cfg);
  // 4 attributes -> 4 level-1 candidates; the cap drops 2 of them.
  EXPECT_GT(c.truncated_candidates, 0u);

  MiningCounters uncapped = Run(MinerConfig());
  EXPECT_EQ(uncapped.truncated_candidates, 0u);
  EXPECT_LT(c.partitions_evaluated, uncapped.partitions_evaluated);
}

TEST(CountersAddTest, Accumulates) {
  MiningCounters a;
  a.partitions_evaluated = 3;
  a.merges = 1;
  MiningCounters b;
  b.partitions_evaluated = 4;
  b.chi2_tests = 7;
  a.Add(b);
  EXPECT_EQ(a.partitions_evaluated, 7u);
  EXPECT_EQ(a.merges, 1u);
  EXPECT_EQ(a.chi2_tests, 7u);
}

}  // namespace
}  // namespace sdadcs::core
