#include <gtest/gtest.h>

#include "common/requests.h"
#include "core/miner.h"
#include "core/space.h"
#include "synth/simulated.h"
#include "util/logging.h"
#include "util/random.h"

namespace sdadcs::core {
namespace {

using test_support::GroupRequest;

data::Dataset MakeSkewed() {
  // Values 1..9 plus a heavy outlier: median 5, mean ~104.
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 1; i <= 9; ++i) {
    b.AppendCategorical(g, i <= 4 ? "a" : "b");
    b.AppendContinuous(x, i);
  }
  b.AppendCategorical(g, "b");
  b.AppendContinuous(x, 1000.0);
  auto db = std::move(b).Build();
  SDADCS_CHECK(db.ok());
  return std::move(db).value();
}

TEST(PartitionCutsTest, MedianVsMeanOnSkewedData) {
  data::Dataset db = MakeSkewed();
  Space space;
  space.bounds = {{1, 0.0, 1000.0}};
  space.rows = data::Selection::All(10);
  std::vector<double> median = PartitionCuts(db, space, SplitKind::kMedian);
  std::vector<double> mean = PartitionCuts(db, space, SplitKind::kMean);
  ASSERT_EQ(median.size(), 1u);
  ASSERT_EQ(mean.size(), 1u);
  EXPECT_DOUBLE_EQ(median[0], 5.0);
  EXPECT_NEAR(mean[0], 104.5, 1e-9);
}

TEST(PartitionCutsTest, MeanCutWithEmptySideIsUnsplittable) {
  // All mass at one value except the bound: mean above every value.
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 0; i < 6; ++i) {
    b.AppendCategorical(g, i % 2 == 0 ? "a" : "b");
    b.AppendContinuous(x, 2.0);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  Space space;
  space.bounds = {{1, 1.0, 3.0}};
  space.rows = data::Selection::All(6);
  std::vector<double> mean = PartitionCuts(*db, space, SplitKind::kMean);
  EXPECT_TRUE(std::isnan(mean[0]));  // no rows above the mean cut
}

TEST(PartitionCutsTest, MedianDelegateMatches) {
  data::Dataset db = MakeSkewed();
  Space space;
  space.bounds = {{1, 0.0, 1000.0}};
  space.rows = data::Selection::All(10);
  EXPECT_EQ(PartitionMedians(db, space),
            PartitionCuts(db, space, SplitKind::kMedian));
}

TEST(SplitKindMinerTest, BothSplitsFindThePlantedRule) {
  data::Dataset db = synth::MakeSimulated3(1000);
  for (SplitKind kind : {SplitKind::kMedian, SplitKind::kMean}) {
    MinerConfig cfg;
    cfg.max_depth = 1;
    cfg.split = kind;
    auto result = Miner(cfg).Mine(db, GroupRequest("Group"));
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->contrasts.empty())
        << (kind == SplitKind::kMedian ? "median" : "mean");
    EXPECT_GT(result->contrasts.front().diff, 0.9);
  }
}

TEST(SplitKindMinerTest, MeanSplitHandlesSkewWithoutCrashing) {
  // Lognormal-ish attribute: mean splits land far right; the miner must
  // still terminate and produce valid output.
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(61);
  for (int i = 0; i < 800; ++i) {
    bool in_a = i % 2 == 0;
    b.AppendCategorical(g, in_a ? "a" : "b");
    double v = std::exp(rng.Gaussian(in_a ? 0.0 : 0.8, 1.0));
    b.AppendContinuous(x, v);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  MinerConfig cfg;
  cfg.max_depth = 1;
  cfg.split = SplitKind::kMean;
  auto result = Miner(cfg).Mine(*db, GroupRequest("g"));
  ASSERT_TRUE(result.ok());
  for (const ContrastPattern& p : result->contrasts) {
    EXPECT_GT(p.diff, cfg.delta);
  }
}

}  // namespace
}  // namespace sdadcs::core
