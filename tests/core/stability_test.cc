#include "core/stability.h"

#include <gtest/gtest.h>

#include "synth/simulated.h"
#include "util/logging.h"
#include "util/random.h"

namespace sdadcs::core {
namespace {

struct Fixture {
  data::Dataset db;
  data::GroupInfo gi;
};

Fixture Make(data::Dataset db) {
  Fixture f{std::move(db), {}};
  auto gi = data::GroupInfo::Create(f.db, 0);
  SDADCS_CHECK(gi.ok());
  f.gi = std::move(gi).value();
  return f;
}

TEST(StabilityTest, StrongPatternRediscoversAlways) {
  Fixture f = Make(synth::MakeSimulated3(1200));
  MinerConfig mcfg;
  mcfg.max_depth = 1;
  StabilityConfig scfg;
  scfg.replicates = 5;
  auto report = AnalyzeStability(f.db, f.gi, mcfg, scfg);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->patterns.empty());
  EXPECT_EQ(report->replicates, 5);
  // The planted Attr1 boundary survives every subsample.
  EXPECT_DOUBLE_EQ(report->patterns.front().frequency, 1.0);
}

TEST(StabilityTest, ValidatesConfig) {
  Fixture f = Make(synth::MakeSimulated3(400));
  MinerConfig mcfg;
  StabilityConfig scfg;
  scfg.replicates = 0;
  EXPECT_FALSE(AnalyzeStability(f.db, f.gi, mcfg, scfg).ok());
  scfg.replicates = 3;
  scfg.sample_fraction = 1.5;
  EXPECT_FALSE(AnalyzeStability(f.db, f.gi, mcfg, scfg).ok());
}

TEST(StabilityTest, FrequenciesBounded) {
  Fixture f = Make(synth::MakeSimulated4(1500));
  MinerConfig mcfg;
  mcfg.max_depth = 2;
  StabilityConfig scfg;
  scfg.replicates = 4;
  auto report = AnalyzeStability(f.db, f.gi, mcfg, scfg);
  ASSERT_TRUE(report.ok());
  for (const PatternStability& ps : report->patterns) {
    EXPECT_GE(ps.frequency, 0.0);
    EXPECT_LE(ps.frequency, 1.0);
    EXPECT_EQ(ps.rediscovered,
              static_cast<int>(ps.frequency * scfg.replicates + 0.5));
  }
}

TEST(StabilityTest, NoiseSliverRediscoversRarely) {
  // Group labels independent of x except for a razor-thin accidental
  // band; with a permissive delta the full run may pick up slivers —
  // their rediscovery frequency must trail the genuine boundary's.
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  util::Rng rng(55);
  for (int i = 0; i < 600; ++i) {
    double v = rng.NextDouble();
    // Mild signal at 0.5 plus noise.
    bool in_a = v < 0.5 ? rng.Bernoulli(0.75) : rng.Bernoulli(0.25);
    b.AppendCategorical(g, in_a ? "a" : "b");
    b.AppendContinuous(x, v);
  }
  auto db = std::move(b).Build();
  ASSERT_TRUE(db.ok());
  Fixture f = Make(std::move(db).value());
  MinerConfig mcfg;
  mcfg.max_depth = 1;
  mcfg.sdad_max_level = 5;
  StabilityConfig scfg;
  scfg.replicates = 6;
  auto report = AnalyzeStability(f.db, f.gi, mcfg, scfg);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->patterns.empty());
  // The strongest pattern (the genuine-ish boundary) should be at least
  // as stable as the weakest one.
  double top = report->patterns.front().frequency;
  double min_freq = 1.0;
  for (const PatternStability& ps : report->patterns) {
    min_freq = std::min(min_freq, ps.frequency);
  }
  EXPECT_GE(top, min_freq);
}

}  // namespace
}  // namespace sdadcs::core
