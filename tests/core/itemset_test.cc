#include "core/itemset.h"

#include <gtest/gtest.h>

namespace sdadcs::core {
namespace {

data::Dataset MakeDb() {
  data::DatasetBuilder b;
  int x = b.AddContinuous("x");
  int y = b.AddContinuous("y");
  int c = b.AddCategorical("c");
  const double xs[] = {1, 2, 3, 4};
  const double ys[] = {10, 20, 30, 40};
  const char* cs[] = {"a", "a", "b", "b"};
  for (int i = 0; i < 4; ++i) {
    b.AppendContinuous(x, xs[i]);
    b.AppendContinuous(y, ys[i]);
    b.AppendCategorical(c, cs[i]);
  }
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(ItemsetTest, KeepsItemsSortedByAttr) {
  Itemset s({Item::Categorical(2, 0), Item::Interval(0, 0, 5)});
  EXPECT_EQ(s.item(0).attr, 0);
  EXPECT_EQ(s.item(1).attr, 2);
}

TEST(ItemsetTest, WithItemReplacesSameAttribute) {
  Itemset s({Item::Interval(0, 0, 5)});
  Itemset t = s.WithItem(Item::Interval(0, 1, 3));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.item(0).lo, 1.0);
  Itemset u = s.WithItem(Item::Interval(1, 0, 9));
  EXPECT_EQ(u.size(), 2u);
}

TEST(ItemsetTest, WithoutAttributeAndIntervals) {
  Itemset s({Item::Interval(0, 0, 5), Item::Categorical(2, 1)});
  EXPECT_EQ(s.WithoutAttribute(0).size(), 1u);
  EXPECT_EQ(s.WithoutAttribute(9).size(), 2u);
  Itemset cats = s.WithoutIntervals();
  ASSERT_EQ(cats.size(), 1u);
  EXPECT_EQ(cats.item(0).kind, Item::Kind::kCategorical);
}

TEST(ItemsetTest, EmptyMatchesEverything) {
  data::Dataset db = MakeDb();
  Itemset empty;
  for (uint32_t r = 0; r < 4; ++r) EXPECT_TRUE(empty.Matches(db, r));
}

TEST(ItemsetTest, ConjunctionSemantics) {
  data::Dataset db = MakeDb();
  int32_t a = db.categorical(2).CodeOf("a");
  Itemset s({Item::Interval(0, 1, 3), Item::Categorical(2, a)});
  // Row 1: x=2 in (1,3], c="a" -> match. Row 2: x=3 but c="b" -> no.
  EXPECT_FALSE(s.Matches(db, 0));  // x=1 excluded
  EXPECT_TRUE(s.Matches(db, 1));
  EXPECT_FALSE(s.Matches(db, 2));
}

TEST(ItemsetTest, CoverFiltersSelection) {
  data::Dataset db = MakeDb();
  Itemset s({Item::Interval(0, 1, 4)});
  data::Selection cover = s.Cover(db, data::Selection::All(4));
  EXPECT_EQ(cover.rows(), (std::vector<uint32_t>{1, 2, 3}));
}

TEST(ItemsetTest, SpecializesWithContainment) {
  Itemset general({Item::Interval(0, 0, 10)});
  Itemset narrow({Item::Interval(0, 2, 5), Item::Categorical(2, 0)});
  EXPECT_TRUE(narrow.Specializes(general));
  EXPECT_FALSE(general.Specializes(narrow));
  // Everything specializes the empty itemset.
  EXPECT_TRUE(general.Specializes(Itemset()));
}

TEST(ItemsetTest, SpecializesFailsOnDisjointIntervals) {
  Itemset a({Item::Interval(0, 0, 5)});
  Itemset b({Item::Interval(0, 5, 10)});
  EXPECT_FALSE(b.Specializes(a));
}

TEST(ItemsetTest, ProperSubsetsCount) {
  Itemset s({Item::Interval(0, 0, 5), Item::Interval(1, 0, 5),
             Item::Categorical(2, 0)});
  std::vector<Itemset> subs = s.ProperSubsets();
  EXPECT_EQ(subs.size(), 6u);  // 2^3 - 2
  for (const Itemset& sub : subs) {
    EXPECT_GT(sub.size(), 0u);
    EXPECT_LT(sub.size(), 3u);
    EXPECT_TRUE(sub.size() == 1 || sub.size() == 2);
  }
}

TEST(ItemsetTest, ProperSubsetsOfSingletonEmpty) {
  Itemset s({Item::Categorical(0, 1)});
  EXPECT_TRUE(s.ProperSubsets().empty());
}

TEST(ItemsetTest, ComplementPartitions) {
  Itemset s({Item::Interval(0, 0, 5), Item::Categorical(2, 0)});
  Itemset a({Item::Interval(0, 0, 5)});
  Itemset rest = s.Complement(a);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest.item(0).attr, 2);
}

TEST(ItemsetTest, KeyDeterministicAndDistinct) {
  Itemset a({Item::Interval(0, 0, 5), Item::Categorical(2, 0)});
  Itemset b({Item::Categorical(2, 0), Item::Interval(0, 0, 5)});
  EXPECT_EQ(a.Key(), b.Key());  // order-insensitive (canonical sort)
  Itemset c({Item::Interval(0, 0, 6), Item::Categorical(2, 0)});
  EXPECT_NE(a.Key(), c.Key());
}

TEST(ItemsetTest, AttributeSignatureIgnoresBounds) {
  Itemset a({Item::Interval(0, 0, 5)});
  Itemset b({Item::Interval(0, 2, 3)});
  EXPECT_EQ(a.AttributeSignature(), b.AttributeSignature());
  Itemset c({Item::Categorical(0, 1)});
  EXPECT_NE(a.AttributeSignature(), c.AttributeSignature());
  // Categorical signature includes the code (containment is equality).
  Itemset d({Item::Categorical(0, 2)});
  EXPECT_NE(c.AttributeSignature(), d.AttributeSignature());
}

TEST(ItemsetTest, ToStringJoinsWithAnd) {
  data::Dataset db = MakeDb();
  Itemset s({Item::Interval(0, 1, 3),
             Item::Categorical(2, db.categorical(2).CodeOf("a"))});
  EXPECT_EQ(s.ToString(db), "1 < x <= 3 and c = a");
  EXPECT_EQ(Itemset().ToString(db), "{}");
}

}  // namespace
}  // namespace sdadcs::core
