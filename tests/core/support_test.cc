#include "core/support.h"

#include <gtest/gtest.h>

namespace sdadcs::core {
namespace {

struct Fixture {
  data::Dataset db;
  data::GroupInfo gi;
};

Fixture MakeFixture() {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  // 4 rows of group a (x = 1..4), 6 rows of group b (x = 5..10).
  for (int i = 1; i <= 10; ++i) {
    b.AppendCategorical(g, i <= 4 ? "a" : "b");
    b.AppendContinuous(x, i);
  }
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  EXPECT_TRUE(gi.ok());
  return {std::move(db).value(), std::move(gi).value()};
}

TEST(GroupCountsTest, SupportsUseGlobalGroupSizes) {
  Fixture f = MakeFixture();
  GroupCounts gc;
  gc.counts = {2.0, 3.0};
  std::vector<double> s = gc.Supports(f.gi);
  EXPECT_DOUBLE_EQ(s[0], 0.5);        // 2/4
  EXPECT_DOUBLE_EQ(s[1], 0.5);        // 3/6
  EXPECT_DOUBLE_EQ(gc.total(), 5.0);
}

TEST(CountMatchesTest, CountsPerGroup) {
  Fixture f = MakeFixture();
  // x in (2, 7]: rows with x=3..7 -> 2 of group a, 3 of group b.
  Itemset s({Item::Interval(1, 2.0, 7.0)});
  GroupCounts gc =
      CountMatches(f.db, f.gi, s, f.gi.base_selection());
  EXPECT_DOUBLE_EQ(gc.counts[0], 2.0);
  EXPECT_DOUBLE_EQ(gc.counts[1], 3.0);
}

TEST(CountMatchesTest, EmptyItemsetCountsEverything) {
  Fixture f = MakeFixture();
  GroupCounts gc =
      CountMatches(f.db, f.gi, Itemset(), f.gi.base_selection());
  EXPECT_DOUBLE_EQ(gc.counts[0], 4.0);
  EXPECT_DOUBLE_EQ(gc.counts[1], 6.0);
}

TEST(CountGroupsTest, RespectsSelection) {
  Fixture f = MakeFixture();
  data::Selection sel({0, 1, 9});
  GroupCounts gc = CountGroups(f.gi, sel);
  EXPECT_DOUBLE_EQ(gc.counts[0], 2.0);
  EXPECT_DOUBLE_EQ(gc.counts[1], 1.0);
}

TEST(GroupSizesTest, ReturnsSizes) {
  Fixture f = MakeFixture();
  EXPECT_EQ(GroupSizes(f.gi), (std::vector<double>{4.0, 6.0}));
}

}  // namespace
}  // namespace sdadcs::core
