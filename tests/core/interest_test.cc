#include "core/interest.h"

#include <gtest/gtest.h>

namespace sdadcs::core {
namespace {

TEST(SupportDifferenceTest, MaxMinusMin) {
  EXPECT_DOUBLE_EQ(SupportDifference({0.48, 0.22}), 0.26);
  EXPECT_DOUBLE_EQ(SupportDifference({0.1, 0.9, 0.5}), 0.8);
  EXPECT_DOUBLE_EQ(SupportDifference({0.3}), 0.0);
}

TEST(PurityRatioTest, PaperExamples) {
  // Section 4.2: c1 with supports 0.02/0.04 and c2 with 0.30/0.60 have
  // equal purity ratio 0.5.
  EXPECT_DOUBLE_EQ(PurityRatio({0.02, 0.04}), 0.5);
  EXPECT_DOUBLE_EQ(PurityRatio({0.30, 0.60}), 0.5);
}

TEST(PurityRatioTest, PureSpaceIsOne) {
  EXPECT_DOUBLE_EQ(PurityRatio({0.8, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(PurityRatio({0.0, 0.3}), 1.0);
}

TEST(PurityRatioTest, BalancedIsZeroEmptyIsZero) {
  EXPECT_DOUBLE_EQ(PurityRatio({0.4, 0.4}), 0.0);
  EXPECT_DOUBLE_EQ(PurityRatio({0.0, 0.0}), 0.0);
}

TEST(PurityRatioTest, SectionFourFourExample) {
  // PR = 1 - (48/98)/(2/2) = 0.5102...
  EXPECT_NEAR(PurityRatio({48.0 / 98.0, 1.0}), 1.0 - 48.0 / 98.0, 1e-12);
}

TEST(PurityRatioTest, MultiGroupUsesTopTwo) {
  EXPECT_DOUBLE_EQ(PurityRatio({0.8, 0.4, 0.1}), 0.5);
}

TEST(SurprisingMeasureTest, ResolvesPaperAmbiguity) {
  // Section 4.2: equal PR but c2 covers more -> Surprising prefers c2;
  // equal Diff but purer c2 -> Surprising prefers c2.
  EXPECT_LT(SurprisingMeasure({0.02, 0.04}), SurprisingMeasure({0.3, 0.6}));
  EXPECT_LT(SurprisingMeasure({0.9, 0.8}), SurprisingMeasure({0.2, 0.1}));
}

TEST(SurprisingMeasureTest, IsProductOfComponents) {
  std::vector<double> s = {0.48, 0.22};
  EXPECT_DOUBLE_EQ(SurprisingMeasure(s),
                   PurityRatio(s) * SupportDifference(s));
}

TEST(MeasureValueTest, Dispatches) {
  std::vector<double> s = {0.6, 0.2};
  EXPECT_DOUBLE_EQ(MeasureValue(MeasureKind::kSupportDiff, s), 0.4);
  EXPECT_DOUBLE_EQ(MeasureValue(MeasureKind::kPurityRatio, s),
                   1.0 - 0.2 / 0.6);
  EXPECT_DOUBLE_EQ(MeasureValue(MeasureKind::kSurprising, s),
                   0.4 * (1.0 - 0.2 / 0.6));
}

TEST(MeasureKindNameTest, Stable) {
  EXPECT_STREQ(MeasureKindName(MeasureKind::kSupportDiff), "support_diff");
  EXPECT_STREQ(MeasureKindName(MeasureKind::kSurprising), "surprising");
}

TEST(EntropyPurityTest, PureIsOneBalancedIsZero) {
  EXPECT_DOUBLE_EQ(EntropyPurity({0.8, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(EntropyPurity({0.4, 0.4}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyPurity({0.0, 0.0}), 0.0);
}

TEST(EntropyPurityTest, MonotoneInSkew) {
  EXPECT_LT(EntropyPurity({0.5, 0.4}), EntropyPurity({0.5, 0.1}));
  double e = EntropyPurity({0.9, 0.1});
  EXPECT_GT(e, 0.0);
  EXPECT_LT(e, 1.0);
}

TEST(EntropyPurityTest, ThreeGroupNormalization) {
  EXPECT_DOUBLE_EQ(EntropyPurity({0.3, 0.3, 0.3}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyPurity({0.7, 0.0, 0.0}), 1.0);
}

TEST(MeasureValueTest, EntropyPurityDispatch) {
  std::vector<double> s = {0.6, 0.2};
  EXPECT_DOUBLE_EQ(MeasureValue(MeasureKind::kEntropyPurity, s),
                   EntropyPurity(s));
  EXPECT_STREQ(MeasureKindName(MeasureKind::kEntropyPurity),
               "entropy_purity");
}

TEST(MeasureNeedsTrivialBoundTest, OnlyPureHomogeneityMeasures) {
  EXPECT_FALSE(MeasureNeedsTrivialBound(MeasureKind::kSupportDiff));
  EXPECT_FALSE(MeasureNeedsTrivialBound(MeasureKind::kSurprising));
  EXPECT_TRUE(MeasureNeedsTrivialBound(MeasureKind::kPurityRatio));
  EXPECT_TRUE(MeasureNeedsTrivialBound(MeasureKind::kEntropyPurity));
}

TEST(WRAccTest, KnownValue) {
  // 100 of 400 rows match; 80 of the matches are group 0; group 0 is
  // 200/400 overall. WRAcc = 0.25 * (0.8 - 0.5) = 0.075.
  EXPECT_DOUBLE_EQ(WRAcc({80, 20}, {200, 200}, 0), 0.075);
}

TEST(WRAccTest, IndependentDescriptionIsZero) {
  EXPECT_DOUBLE_EQ(WRAcc({50, 50}, {200, 200}, 0), 0.0);
}

TEST(WRAccTest, AntiCorrelatedIsNegative) {
  EXPECT_LT(WRAcc({20, 80}, {200, 200}, 0), 0.0);
}

TEST(WRAccTest, EmptyCoverIsZero) {
  EXPECT_DOUBLE_EQ(WRAcc({0, 0}, {200, 200}, 0), 0.0);
}

TEST(WRAccTest, RankingMatchesSupportDifferenceForTwoGroups) {
  // The survey result the paper cites: WRAcc and support difference are
  // directly proportional for two groups -> identical ranking.
  struct Case {
    std::vector<double> counts;
  };
  std::vector<Case> cases = {{{80, 20}}, {{150, 90}}, {{40, 5}},
                             {{120, 120}}, {{10, 90}}};
  std::vector<double> sizes = {200, 200};
  for (size_t i = 0; i < cases.size(); ++i) {
    for (size_t j = 0; j < cases.size(); ++j) {
      double w_i = WRAcc(cases[i].counts, sizes, 0);
      double w_j = WRAcc(cases[j].counts, sizes, 0);
      double d_i = cases[i].counts[0] / 200 - cases[i].counts[1] / 200;
      double d_j = cases[j].counts[0] / 200 - cases[j].counts[1] / 200;
      EXPECT_EQ(w_i < w_j, d_i < d_j) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace sdadcs::core
