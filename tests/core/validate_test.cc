#include "core/validate.h"

#include <gtest/gtest.h>

#include "common/requests.h"
#include "core/miner.h"
#include "core/support.h"
#include "synth/simulated.h"
#include "util/logging.h"

namespace sdadcs::core {
namespace {

using test_support::GroupsRequest;

struct Fixture {
  data::Dataset db;
  data::GroupInfo gi;
};

Fixture MakeFixture() {
  Fixture f{synth::MakeSimulated3(1000), {}};
  auto gi = data::GroupInfo::Create(f.db, 0);
  SDADCS_CHECK(gi.ok());
  f.gi = std::move(gi).value();
  return f;
}

TEST(HoldoutSplitTest, PartitionsRowsStratified) {
  Fixture f = MakeFixture();
  auto split = MakeHoldoutSplit(f.db, f.gi, 0.7, 11);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.total() + split->test.total(), f.gi.total());
  // Stratification keeps both groups on both sides, roughly 70/30.
  for (int g = 0; g < 2; ++g) {
    double frac = static_cast<double>(split->train.group_size(g)) /
                  static_cast<double>(f.gi.group_size(g));
    EXPECT_NEAR(frac, 0.7, 0.02) << "group " << g;
  }
  // Disjoint.
  data::Selection overlap =
      split->train.base_selection().Intersect(split->test.base_selection());
  EXPECT_TRUE(overlap.empty());
}

TEST(HoldoutSplitTest, InvalidFractionRejected) {
  Fixture f = MakeFixture();
  EXPECT_FALSE(MakeHoldoutSplit(f.db, f.gi, 0.0, 1).ok());
  EXPECT_FALSE(MakeHoldoutSplit(f.db, f.gi, 1.0, 1).ok());
}

TEST(HoldoutSplitTest, DeterministicForSeed) {
  Fixture f = MakeFixture();
  auto a = MakeHoldoutSplit(f.db, f.gi, 0.5, 3);
  auto b = MakeHoldoutSplit(f.db, f.gi, 0.5, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->train.base_selection().rows(),
            b->train.base_selection().rows());
}

TEST(ValidateTest, RealPatternGeneralizes) {
  Fixture f = MakeFixture();
  auto split = MakeHoldoutSplit(f.db, f.gi, 0.6, 5);
  ASSERT_TRUE(split.ok());

  MinerConfig cfg;
  cfg.max_depth = 1;
  auto mined = Miner(cfg).Mine(f.db, GroupsRequest(split->train));
  ASSERT_TRUE(mined.ok());
  ASSERT_FALSE(mined->contrasts.empty());

  auto validated = ValidateOnHoldout(f.db, split->test, mined->contrasts,
                                     cfg.delta, cfg.alpha);
  ASSERT_EQ(validated.size(), mined->contrasts.size());
  // The planted Attr1 rule must survive out of sample.
  EXPECT_TRUE(validated.front().generalizes);
  EXPECT_GT(validated.front().test_diff, 0.8);
}

TEST(ValidateTest, OverfitNoisePatternFails) {
  // A hand-made pattern that covers nothing in particular: a razor-thin
  // interval fit to a handful of training rows.
  Fixture f = MakeFixture();
  auto split = MakeHoldoutSplit(f.db, f.gi, 0.6, 7);
  ASSERT_TRUE(split.ok());

  ContrastPattern bogus;
  bogus.itemset = Itemset({Item::Interval(2, 0.500, 0.502)});
  GroupCounts gc = CountMatches(f.db, split->train, bogus.itemset,
                                split->train.base_selection());
  bogus.counts = gc.counts;
  bogus.ComputeStats(split->train, MeasureKind::kSupportDiff);

  auto validated =
      ValidateOnHoldout(f.db, split->test, {bogus}, 0.1, 0.05);
  ASSERT_EQ(validated.size(), 1u);
  EXPECT_FALSE(validated.front().generalizes);
}

TEST(GroupInfoRestrictTest, FailsWhenGroupVanishes) {
  Fixture f = MakeFixture();
  // Keep only rows of group 0.
  std::vector<uint32_t> rows;
  for (uint32_t r : f.gi.base_selection()) {
    if (f.gi.group_of(r) == 0) rows.push_back(r);
  }
  auto restricted = f.gi.Restrict(data::Selection(std::move(rows)));
  EXPECT_FALSE(restricted.ok());
}

TEST(GroupInfoRestrictTest, SizesRecomputed) {
  Fixture f = MakeFixture();
  // Keep every second base row.
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < f.gi.base_selection().size(); i += 2) {
    rows.push_back(f.gi.base_selection()[i]);
  }
  auto restricted = f.gi.Restrict(data::Selection(std::move(rows)));
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted->total(),
            (f.gi.base_selection().size() + 1) / 2);
  EXPECT_EQ(restricted->group_size(0) + restricted->group_size(1),
            restricted->total());
}

}  // namespace
}  // namespace sdadcs::core
