#include "core/miner.h"

#include <gtest/gtest.h>

#include "common/requests.h"
#include "synth/simulated.h"
#include "synth/uci_like.h"

namespace sdadcs::core {
namespace {

using test_support::GroupRequest;

MinerConfig BaseConfig() {
  MinerConfig cfg;
  cfg.alpha = 0.05;
  cfg.delta = 0.1;
  cfg.max_depth = 2;
  return cfg;
}

int MaxPatternSize(const MiningResult& r) {
  int mx = 0;
  for (const ContrastPattern& p : r.contrasts) {
    mx = std::max<int>(mx, static_cast<int>(p.itemset.size()));
  }
  return mx;
}

TEST(MinerTest, ValidatesConfig) {
  data::Dataset db = synth::MakeSimulated3(200);
  MinerConfig cfg = BaseConfig();
  cfg.alpha = 1.5;
  EXPECT_FALSE(Miner(cfg).Mine(db, GroupRequest("Group")).ok());
  cfg = BaseConfig();
  cfg.delta = 0.0;
  EXPECT_FALSE(Miner(cfg).Mine(db, GroupRequest("Group")).ok());
  cfg = BaseConfig();
  cfg.top_k = 0;
  EXPECT_FALSE(Miner(cfg).Mine(db, GroupRequest("Group")).ok());
}

TEST(MinerTest, UnknownGroupAttributeFails) {
  data::Dataset db = synth::MakeSimulated3(200);
  EXPECT_FALSE(
      Miner(BaseConfig()).Mine(db, GroupRequest("nope")).ok());
}

TEST(MinerTest, UnknownSelectedAttributeFails) {
  data::Dataset db = synth::MakeSimulated3(200);
  MinerConfig cfg = BaseConfig();
  cfg.attributes = {"ghost"};
  EXPECT_FALSE(Miner(cfg).Mine(db, GroupRequest("Group")).ok());
}

TEST(MinerTest, GroupAttributeCannotBeMined) {
  data::Dataset db = synth::MakeSimulated3(200);
  MinerConfig cfg = BaseConfig();
  cfg.attributes = {"Group"};
  EXPECT_FALSE(Miner(cfg).Mine(db, GroupRequest("Group")).ok());
}

TEST(MinerTest, Simulated1FindsOnlyTheSeparatingAttribute) {
  // Figure 3a: Attr1 < 0.5 separates perfectly. Both level-1 sides are
  // pure, so no 2-attribute contrast should survive.
  data::Dataset db = synth::MakeSimulated1(1000);
  Miner miner(BaseConfig());
  auto result = miner.Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->contrasts.empty());
  EXPECT_EQ(MaxPatternSize(*result), 1);
  // The strongest patterns sit on the 0.5 boundary of some attribute.
  bool found_boundary = false;
  for (const ContrastPattern& p : result->contrasts) {
    const Item& it = p.itemset.item(0);
    if (p.purity >= 1.0 && (std::abs(it.lo - 0.5) < 0.05 ||
                            std::abs(it.hi - 0.5) < 0.05)) {
      found_boundary = true;
    }
  }
  EXPECT_TRUE(found_boundary);
}

TEST(MinerTest, Simulated2XorNeedsBothAttributes) {
  // Figure 3b: no univariate rule exists; the contrast is multivariate.
  data::Dataset db = synth::MakeSimulated2(1200);
  MinerConfig cfg = BaseConfig();
  cfg.measure = MeasureKind::kSurprising;
  Miner miner(cfg);
  auto result = miner.Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(result.ok());
  bool has_bivariate = false;
  for (const ContrastPattern& p : result->contrasts) {
    if (p.itemset.size() == 2) has_bivariate = true;
  }
  EXPECT_TRUE(has_bivariate);

  // Each attribute alone yields nothing.
  for (const char* attr : {"Attr1", "Attr2"}) {
    MinerConfig solo = cfg;
    solo.attributes = {attr};
    auto r = Miner(solo).Mine(db, GroupRequest("Group"));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->contrasts.empty()) << attr;
  }
}

TEST(MinerTest, Simulated3NoHigherLevelContrasts) {
  // Figure 3c: only Attr1 matters; SDAD-CS reports level-1 contrasts
  // only (Cortana's meaningless level-2 boxes must not appear).
  data::Dataset db = synth::MakeSimulated3(1000);
  Miner miner(BaseConfig());
  auto result = miner.Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->contrasts.empty());
  EXPECT_EQ(MaxPatternSize(*result), 1);
}

TEST(MinerTest, Simulated4FindsLevelTwoBlocks) {
  // Figure 3d: the structure lives at level 2.
  data::Dataset db = synth::MakeSimulated4(2000);
  MinerConfig cfg = BaseConfig();
  cfg.measure = MeasureKind::kSurprising;
  Miner miner(cfg);
  auto result = miner.Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(result.ok());
  bool found_block = false;
  for (const ContrastPattern& p : result->contrasts) {
    if (p.itemset.size() == 2 && p.purity > 0.8) found_block = true;
  }
  EXPECT_TRUE(found_block);
}

TEST(MinerTest, NpModeEvaluatesMorePartitions) {
  data::Dataset db = synth::MakeSimulated4(1500);
  MinerConfig cfg = BaseConfig();
  auto pruned = Miner(cfg).Mine(db, GroupRequest("Group"));
  cfg.meaningful_pruning = false;
  auto np = Miner(cfg).Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(np.ok());
  EXPECT_GE(np->counters.partitions_evaluated,
            pruned->counters.partitions_evaluated);
  EXPECT_EQ(np->counters.pruned_redundant, 0u);
  EXPECT_EQ(np->counters.pruned_pure, 0u);
}

TEST(MinerTest, DeterministicAcrossRuns) {
  data::Dataset db = synth::MakeSimulated4(800);
  Miner miner(BaseConfig());
  auto a = miner.Mine(db, GroupRequest("Group"));
  auto b = miner.Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->contrasts.size(), b->contrasts.size());
  for (size_t i = 0; i < a->contrasts.size(); ++i) {
    EXPECT_EQ(a->contrasts[i].itemset.Key(), b->contrasts[i].itemset.Key());
    EXPECT_DOUBLE_EQ(a->contrasts[i].measure, b->contrasts[i].measure);
  }
}

TEST(MinerTest, ResultsSortedByMeasure) {
  data::Dataset db = synth::MakeSimulated4(1000);
  auto result =
      Miner(BaseConfig()).Mine(db, GroupRequest("Group"));
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->contrasts.size(); ++i) {
    EXPECT_GE(result->contrasts[i - 1].measure,
              result->contrasts[i].measure);
  }
}

TEST(MinerTest, AdultLikeYoungAgeBandIsPureBachelors) {
  synth::NamedDataset adult = synth::MakeAdultLike();
  MinerConfig cfg = BaseConfig();
  cfg.measure = MeasureKind::kPurityRatio;
  cfg.attributes = {"age", "hours_per_week"};
  Miner miner(cfg);
  auto result =
      miner.Mine(adult.db, GroupRequest(adult.group_attr, adult.groups));
  ASSERT_TRUE(result.ok());
  // Table 1, row 1: a low-age interval with zero Doctorate support.
  bool found = false;
  for (const ContrastPattern& p : result->contrasts) {
    if (p.itemset.size() != 1) continue;
    const Item& it = p.itemset.item(0);
    if (it.kind == Item::Kind::kInterval && it.hi <= 32.0 &&
        p.supports[0] == 0.0 && p.supports[1] > 0.05) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MinerTest, MeanSupportDifferenceHelper) {
  MiningResult r;
  for (double d : {0.5, 0.3, 0.1}) {
    ContrastPattern p;
    p.diff = d;
    r.contrasts.push_back(p);
  }
  EXPECT_DOUBLE_EQ(r.MeanSupportDifference(2), 0.4);
  EXPECT_DOUBLE_EQ(r.MeanSupportDifference(100), 0.3);
  EXPECT_DOUBLE_EQ(MiningResult().MeanSupportDifference(10), 0.0);
}

}  // namespace
}  // namespace sdadcs::core
