#include "core/productivity.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/support.h"
#include "util/logging.h"
#include "util/random.h"

namespace sdadcs::core {
namespace {

// A dataset with two categorical attributes u, v and group g designed so
// that:
//  - u=hit alone is a mild contrast;
//  - v=hit alone is a mild contrast;
//  - in the "dependent" variant, u=hit & v=hit co-occur in group a far
//    beyond independence (productive conjunction);
//  - in the "independent" variant, u and v are independent within each
//    group (unproductive conjunction).
data::Dataset MakeDb(bool dependent, int n = 2000) {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int u = b.AddCategorical("u");
  int v = b.AddCategorical("v");
  util::Rng rng(31);
  for (int i = 0; i < n; ++i) {
    bool in_a = i % 2 == 0;
    b.AppendCategorical(g, in_a ? "a" : "b");
    double pu = in_a ? 0.5 : 0.3;
    bool u_hit = rng.Bernoulli(pu);
    bool v_hit;
    if (dependent && in_a) {
      // Inside group a, v follows u tightly.
      v_hit = u_hit ? rng.Bernoulli(0.9) : rng.Bernoulli(0.1);
    } else {
      v_hit = rng.Bernoulli(in_a ? 0.5 : 0.3);
    }
    b.AppendCategorical(u, u_hit ? "hit" : "miss");
    b.AppendCategorical(v, v_hit ? "hit" : "miss");
  }
  auto db = std::move(b).Build();
  SDADCS_CHECK(db.ok());
  return std::move(db).value();
}

class Harness {
 public:
  explicit Harness(data::Dataset db)
      : db_(std::move(db)), topk_(100, 0.1) {
    auto gi = data::GroupInfo::Create(db_, 0);
    SDADCS_CHECK(gi.ok());
    gi_ = std::make_unique<data::GroupInfo>(std::move(gi).value());
    ctx_.db = &db_;
    ctx_.gi = gi_.get();
    ctx_.cfg = &cfg_;
    ctx_.prune_table = &table_;
    ctx_.topk = &topk_;
    ctx_.counters = &counters_;
    ctx_.group_sizes = GroupSizes(*gi_);
  }

  MiningContext& ctx() { return ctx_; }
  const data::Dataset& db() const { return db_; }
  const data::GroupInfo& gi() const { return *gi_; }

  ContrastPattern PatternFor(const Itemset& itemset) {
    ContrastPattern p;
    p.itemset = itemset;
    GroupCounts gc =
        CountMatches(db_, *gi_, itemset, gi_->base_selection());
    p.counts = gc.counts;
    p.ComputeStats(*gi_, MeasureKind::kSupportDiff);
    return p;
  }

  Itemset BothHits() {
    return Itemset(
        {Item::Categorical(1, db_.categorical(1).CodeOf("hit")),
         Item::Categorical(2, db_.categorical(2).CodeOf("hit"))});
  }

 private:
  data::Dataset db_;
  MinerConfig cfg_;
  std::unique_ptr<data::GroupInfo> gi_;
  PruneTable table_;
  TopK topk_;
  MiningCounters counters_;
  MiningContext ctx_;
};

TEST(IsProductiveTest, SingletonAlwaysProductive) {
  Harness h(MakeDb(true));
  ContrastPattern p = h.PatternFor(
      Itemset({Item::Categorical(1, h.db().categorical(1).CodeOf("hit"))}));
  EXPECT_TRUE(IsProductive(h.ctx(), p));
}

TEST(IsProductiveTest, DependentConjunctionIsProductive) {
  Harness h(MakeDb(true));
  ContrastPattern p = h.PatternFor(h.BothHits());
  EXPECT_TRUE(IsProductive(h.ctx(), p));
}

TEST(IsProductiveTest, IndependentConjunctionIsNot) {
  Harness h(MakeDb(false));
  ContrastPattern p = h.PatternFor(h.BothHits());
  EXPECT_FALSE(IsProductive(h.ctx(), p));
}

TEST(IsRedundantAgainstSubsetsTest, FunctionalDependencyDetected) {
  // pregnant => female: {female, pregnant} has exactly the supports of
  // {pregnant} -> redundant (the paper's Section 4.3 example).
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int sex = b.AddCategorical("sex");
  int preg = b.AddCategorical("pregnant");
  util::Rng rng(33);
  for (int i = 0; i < 1200; ++i) {
    bool in_a = i % 3 == 0;
    b.AppendCategorical(g, in_a ? "a" : "b");
    bool female = rng.Bernoulli(0.5);
    b.AppendCategorical(sex, female ? "female" : "male");
    bool pregnant = female && rng.Bernoulli(in_a ? 0.6 : 0.2);
    b.AppendCategorical(preg, pregnant ? "yes" : "no");
  }
  auto db_or = std::move(b).Build();
  ASSERT_TRUE(db_or.ok());
  Harness h(std::move(db_or).value());

  Itemset both({Item::Categorical(1, h.db().categorical(1).CodeOf("female")),
                Item::Categorical(2, h.db().categorical(2).CodeOf("yes"))});
  ContrastPattern p = h.PatternFor(both);
  EXPECT_TRUE(IsRedundantAgainstSubsets(h.ctx(), p));

  // The standalone "pregnant" pattern is not redundant.
  ContrastPattern single = h.PatternFor(Itemset(
      {Item::Categorical(2, h.db().categorical(2).CodeOf("yes"))}));
  EXPECT_FALSE(IsRedundantAgainstSubsets(h.ctx(), single));
}

TEST(FilterIndependentlyProductiveTest, ExplainedParentDropped) {
  // All of u=hit's contrast in group a comes through v=hit (dependent
  // variant): once {u=hit, v=hit} is in the list, u=hit's residual
  // should decide its fate; craft an extreme case where residual rows
  // carry no signal.
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int u = b.AddCategorical("u");
  int v = b.AddCategorical("v");
  util::Rng rng(37);
  for (int i = 0; i < 2000; ++i) {
    bool in_a = i % 2 == 0;
    b.AppendCategorical(g, in_a ? "a" : "b");
    // v=hit is the real signal; u=hit occurs exactly when v=hit plus
    // noise calibrated so P(u & !v) = 0.10 in BOTH groups — the residual
    // of u=hit outside the conjunction carries no contrast at all.
    bool v_hit = rng.Bernoulli(in_a ? 0.6 : 0.15);
    bool u_hit = v_hit || rng.Bernoulli(in_a ? 0.10 / 0.40 : 0.10 / 0.85);
    b.AppendCategorical(u, u_hit ? "hit" : "miss");
    b.AppendCategorical(v, v_hit ? "hit" : "miss");
  }
  auto db_or = std::move(b).Build();
  ASSERT_TRUE(db_or.ok());
  Harness h(std::move(db_or).value());

  Itemset u_only(
      {Item::Categorical(1, h.db().categorical(1).CodeOf("hit"))});
  ContrastPattern parent = h.PatternFor(u_only);
  ContrastPattern child = h.PatternFor(h.BothHits());
  std::vector<ContrastPattern> patterns = {parent, child};
  std::vector<ContrastPattern> kept =
      FilterIndependentlyProductive(h.ctx(), std::move(patterns));
  // u=hit minus the conjunction leaves only noise rows -> dropped; the
  // conjunction itself survives.
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].itemset.size(), 2u);
  EXPECT_EQ(h.ctx().counters->not_independently_productive, 1u);
}

TEST(FilterIndependentlyProductiveTest, GenuineParentKept) {
  Harness h(MakeDb(true));
  Itemset u_only(
      {Item::Categorical(1, h.db().categorical(1).CodeOf("hit"))});
  // Restrict the conjunction to a narrow slice so u=hit keeps plenty of
  // independent signal.
  ContrastPattern parent = h.PatternFor(u_only);
  ContrastPattern child = h.PatternFor(h.BothHits());
  std::vector<ContrastPattern> patterns = {parent, child};
  std::vector<ContrastPattern> kept =
      FilterIndependentlyProductive(h.ctx(), std::move(patterns));
  bool parent_kept = false;
  for (const ContrastPattern& p : kept) {
    if (p.itemset.size() == 1) parent_kept = true;
  }
  EXPECT_TRUE(parent_kept);
}

TEST(FilterIndependentlyProductiveTest, NoSupersetsNoChange) {
  Harness h(MakeDb(true));
  ContrastPattern a = h.PatternFor(
      Itemset({Item::Categorical(1, h.db().categorical(1).CodeOf("hit"))}));
  ContrastPattern b = h.PatternFor(
      Itemset({Item::Categorical(2, h.db().categorical(2).CodeOf("hit"))}));
  std::vector<ContrastPattern> kept =
      FilterIndependentlyProductive(h.ctx(), {a, b});
  EXPECT_EQ(kept.size(), 2u);
}

}  // namespace
}  // namespace sdadcs::core
