// Engine-level behaviour of the run-control layer: deadlines, budgets
// and cancellation drain cleanly with valid best-so-far results, and a
// named group spec is byte-identical to mining with a pre-resolved
// GroupInfo.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/stucco.h"
#include "synth/scaling.h"
#include "synth/simulated.h"
#include "synth/uci_like.h"
#include "util/run_control.h"

namespace sdadcs::core {
namespace {

// Byte-exact rendering of a mined result (same shape as the
// differential tests): itemset, exact counts and full-precision stats,
// in rank order.
std::string RenderResult(const std::vector<ContrastPattern>& patterns) {
  std::string out;
  char buf[512];
  for (const ContrastPattern& p : patterns) {
    out += p.itemset.Key();
    for (double c : p.counts) {
      std::snprintf(buf, sizeof(buf), " %.17g", c);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  " | diff=%.17g measure=%.17g chi2=%.17g p=%.17g\n", p.diff,
                  p.measure, p.chi2, p.p_value);
    out += buf;
  }
  return out;
}

void ExpectSortedByMeasure(const std::vector<ContrastPattern>& patterns) {
  for (size_t i = 1; i < patterns.size(); ++i) {
    EXPECT_GE(patterns[i - 1].measure, patterns[i].measure) << "rank " << i;
  }
}

TEST(RunControlMiningTest, DeadlineMidRunReturnsSortedPartialTopK) {
  // Wide + deep enough that an unbounded run takes many times the
  // deadline; the informative features come first, so even a short
  // prefix of level 1 yields patterns.
  synth::ScalingOptions opt;
  opt.rows = 40000;
  opt.continuous_features = 60;
  opt.categorical_features = 20;
  synth::NamedDataset sc = synth::MakeScalingDataset(opt);

  MinerConfig cfg;
  cfg.max_depth = 3;
  Miner miner(cfg);

  // Unoptimized / sanitizer builds mine an order of magnitude slower,
  // so they get a longer deadline (enough to score the first
  // candidates) and a looser drain bound; the release acceptance
  // numbers stay 100 ms + 50 ms overshoot.
#ifdef NDEBUG
  constexpr std::chrono::milliseconds kDeadline(100);
  constexpr double kMaxWall = 0.150;
#else
  constexpr std::chrono::milliseconds kDeadline(500);
  constexpr double kMaxWall = 2.0;
#endif
  MineRequest request;
  request.group_attr = sc.group_attr;
  request.run_control = util::RunControl::WithDeadline(kDeadline);
  auto before = util::RunControl::Clock::now();
  auto result = miner.Mine(sc.db, request);
  double wall = std::chrono::duration<double>(
                    util::RunControl::Clock::now() - before)
                    .count();
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->completion, Completion::kDeadlineExceeded);
  // The run drains within 50 ms of the 100 ms deadline (release).
  EXPECT_LT(wall, kMaxWall);
  // Best-so-far: non-empty, correctly sorted, valid patterns.
  ASSERT_FALSE(result->contrasts.empty());
  ExpectSortedByMeasure(result->contrasts);
  for (const ContrastPattern& p : result->contrasts) {
    EXPECT_GE(p.itemset.size(), 1u);
    EXPECT_GT(p.diff, 0.0);
  }
}

TEST(RunControlMiningTest, NodeBudgetStopsTheRun) {
  data::Dataset db = synth::MakeSimulated4(1500);
  MinerConfig cfg;
  cfg.max_depth = 2;

  MineRequest request;
  request.group_attr = "Group";
  request.run_control.set_node_budget(8);
  auto result = Miner(cfg).Mine(db, request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completion, Completion::kBudgetExhausted);

  // An ample budget completes and is not misreported as exhausted.
  MineRequest ample;
  ample.group_attr = "Group";
  ample.run_control.set_node_budget(100000000);
  auto full = Miner(cfg).Mine(db, ample);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->completion, Completion::kComplete);
}

TEST(RunControlMiningTest, PreCancelledRequestReturnsOkAndEmptyish) {
  data::Dataset db = synth::MakeSimulated3(800);
  MinerConfig cfg;
  cfg.max_depth = 2;

  MineRequest request;
  request.group_attr = "Group";
  request.run_control.Cancel();
  auto result = Miner(cfg).Mine(db, request);
  // Cancellation is a completion state, never an error.
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completion, Completion::kCancelled);
  EXPECT_TRUE(result->contrasts.empty());
}

TEST(RunControlMiningTest, AbandonedWorkIsCounted) {
  data::Dataset db = synth::MakeSimulated4(1200);
  MinerConfig cfg;
  cfg.max_depth = 2;
  MineRequest request;
  request.group_attr = "Group";
  request.run_control.set_node_budget(4);
  auto result = Miner(cfg).Mine(db, request);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->completion, Completion::kBudgetExhausted);
  EXPECT_GT(result->counters.abandoned_candidates, 0u);
}

TEST(RunControlMiningTest, ProgressCallbackSeesLevels) {
  data::Dataset db = synth::MakeSimulated4(1000);
  MinerConfig cfg;
  cfg.max_depth = 2;

  std::vector<util::RunProgress> seen;
  MineRequest request;
  request.group_attr = "Group";
  request.run_control.set_progress_callback(
      [&seen](const util::RunProgress& p) { seen.push_back(p); });
  auto result = Miner(cfg).Mine(db, request);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(seen.empty());
  int max_level = 0;
  for (const util::RunProgress& p : seen) {
    EXPECT_LE(p.candidates_done, p.candidates_total);
    max_level = std::max(max_level, p.level);
  }
  EXPECT_EQ(max_level, 2);
}

TEST(RunControlMiningTest, NamedSpecMatchesPrebuiltGroups) {
  // A request naming its groups (group_attr + group_values, resolved by
  // the engine) must be byte-identical to the same mine over a
  // pre-resolved GroupInfo — same patterns, same order, same stats to
  // the last bit.
  for (const std::string& name :
       {std::string("adult"), std::string("transfusion")}) {
    synth::NamedDataset nd = synth::MakeUciLike(name, /*seed=*/7);
    MinerConfig cfg;
    cfg.max_depth = 2;
    cfg.top_k = 50;
    Miner miner(cfg);

    MineRequest request;
    request.group_attr = nd.group_attr;
    request.group_values = nd.groups;
    auto via_request = miner.Mine(nd.db, request);
    ASSERT_TRUE(via_request.ok());
    EXPECT_EQ(via_request->completion, Completion::kComplete);

    auto attr = nd.db.schema().IndexOf(nd.group_attr);
    ASSERT_TRUE(attr.ok());
    auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
    ASSERT_TRUE(gi.ok());
    MineRequest prebuilt;
    prebuilt.groups = &*gi;
    auto via_groups = miner.Mine(nd.db, prebuilt);
    ASSERT_TRUE(via_groups.ok());

    EXPECT_EQ(RenderResult(via_request->contrasts),
              RenderResult(via_groups->contrasts))
        << "dataset " << name;
    EXPECT_EQ(via_request->counters.partitions_evaluated,
              via_groups->counters.partitions_evaluated)
        << "dataset " << name;
  }
}

TEST(RunControlMiningTest, UnboundedScalingRunIsComplete) {
  synth::ScalingOptions opt;
  opt.rows = 2000;
  opt.continuous_features = 10;
  opt.categorical_features = 5;
  synth::NamedDataset sc = synth::MakeScalingDataset(opt);
  MinerConfig cfg;
  cfg.max_depth = 2;

  MineRequest request;
  request.group_attr = sc.group_attr;
  auto bounded_free = Miner(cfg).Mine(sc.db, request);
  ASSERT_TRUE(bounded_free.ok());
  EXPECT_EQ(bounded_free->completion, Completion::kComplete);
  EXPECT_EQ(bounded_free->counters.abandoned_candidates, 0u);

  auto attr = sc.db.schema().IndexOf(sc.group_attr);
  ASSERT_TRUE(attr.ok());
  auto gi = data::GroupInfo::Create(sc.db, *attr);
  ASSERT_TRUE(gi.ok());
  MineRequest prebuilt;
  prebuilt.groups = &*gi;
  auto via_groups = Miner(cfg).Mine(sc.db, prebuilt);
  ASSERT_TRUE(via_groups.ok());
  EXPECT_EQ(RenderResult(bounded_free->contrasts),
            RenderResult(via_groups->contrasts));
}

TEST(RunControlMiningTest, StuccoHonoursControl) {
  // Needs categorical attributes: STUCCO ignores continuous ones.
  synth::NamedDataset nd = synth::MakeAdultLike();
  auto attr = nd.db.schema().IndexOf(nd.group_attr);
  ASSERT_TRUE(attr.ok());
  auto gi = data::GroupInfo::CreateForValues(nd.db, *attr, nd.groups);
  ASSERT_TRUE(gi.ok());
  StuccoConfig cfg;

  util::RunControl cancelled;
  cancelled.Cancel();
  StuccoResult stopped = MineStucco(nd.db, *gi, cfg, &cancelled);
  EXPECT_EQ(stopped.completion, Completion::kCancelled);
  EXPECT_TRUE(stopped.contrasts.empty());

  StuccoResult full = MineStucco(nd.db, *gi, cfg);
  EXPECT_EQ(full.completion, Completion::kComplete);
  EXPECT_GT(full.itemsets_evaluated, 0u);
}

TEST(RunControlMiningTest, InvalidConfigReportsField) {
  data::Dataset db = synth::MakeSimulated3(300);
  MinerConfig cfg;
  cfg.top_k = 0;
  MineRequest request;
  request.group_attr = "Group";
  auto result = Miner(cfg).Mine(db, request);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("top_k"), std::string::npos);
}

}  // namespace
}  // namespace sdadcs::core
