#include "core/contrast.h"

#include <gtest/gtest.h>

namespace sdadcs::core {
namespace {

struct Fixture {
  data::Dataset db;
  data::GroupInfo gi;
};

Fixture MakeFixture() {
  data::DatasetBuilder b;
  int g = b.AddCategorical("g");
  int x = b.AddContinuous("x");
  for (int i = 0; i < 100; ++i) {
    b.AppendCategorical(g, i < 50 ? "a" : "b");
    b.AppendContinuous(x, i);
  }
  auto db = std::move(b).Build();
  EXPECT_TRUE(db.ok());
  auto gi = data::GroupInfo::Create(*db, 0);
  EXPECT_TRUE(gi.ok());
  return {std::move(db).value(), std::move(gi).value()};
}

TEST(ContrastPatternTest, ComputeStatsFillsEverything) {
  Fixture f = MakeFixture();
  ContrastPattern p;
  p.itemset = Itemset({Item::Interval(1, -1.0, 49.0)});
  p.counts = {50.0, 0.0};
  p.ComputeStats(f.gi, MeasureKind::kSupportDiff);
  EXPECT_DOUBLE_EQ(p.supports[0], 1.0);
  EXPECT_DOUBLE_EQ(p.supports[1], 0.0);
  EXPECT_DOUBLE_EQ(p.diff, 1.0);
  EXPECT_DOUBLE_EQ(p.purity, 1.0);
  EXPECT_DOUBLE_EQ(p.measure, 1.0);
  EXPECT_LT(p.p_value, 1e-10);
  EXPECT_EQ(p.level, 1);
}

TEST(ContrastPatternTest, MeasureFollowsKind) {
  Fixture f = MakeFixture();
  ContrastPattern p;
  p.itemset = Itemset({Item::Interval(1, -1.0, 59.0)});
  p.counts = {50.0, 10.0};
  p.ComputeStats(f.gi, MeasureKind::kSurprising);
  EXPECT_DOUBLE_EQ(p.measure, p.purity * p.diff);
}

TEST(ContrastPatternTest, ToStringContainsSupportsAndNames) {
  Fixture f = MakeFixture();
  ContrastPattern p;
  p.itemset = Itemset({Item::Interval(1, -1.0, 49.0)});
  p.counts = {50.0, 0.0};
  p.ComputeStats(f.gi, MeasureKind::kSupportDiff);
  std::string s = p.ToString(f.db, f.gi);
  EXPECT_NE(s.find("x <= 49"), std::string::npos);
  EXPECT_NE(s.find("supp(a)=1.000"), std::string::npos);
  EXPECT_NE(s.find("supp(b)=0.000"), std::string::npos);
}

TEST(SortByMeasureDescTest, OrdersAndBreaksTies) {
  ContrastPattern a;
  a.itemset = Itemset({Item::Categorical(0, 0)});
  a.measure = 0.5;
  a.level = 1;
  ContrastPattern b;
  b.itemset = Itemset({Item::Categorical(0, 1), Item::Categorical(1, 0)});
  b.measure = 0.5;
  b.level = 2;
  ContrastPattern c;
  c.itemset = Itemset({Item::Categorical(2, 0)});
  c.measure = 0.9;
  c.level = 1;
  std::vector<ContrastPattern> v = {b, a, c};
  SortByMeasureDesc(&v);
  EXPECT_DOUBLE_EQ(v[0].measure, 0.9);
  // Tie at 0.5: fewer items first.
  EXPECT_EQ(v[1].level, 1);
  EXPECT_EQ(v[2].level, 2);
}

}  // namespace
}  // namespace sdadcs::core
