#include "core/diversity.h"

#include <gtest/gtest.h>

#include "common/requests.h"
#include "core/miner.h"
#include "core/support.h"
#include "synth/uci_like.h"
#include "util/logging.h"

namespace sdadcs::core {
namespace {

using test_support::GroupsRequest;

struct Fixture {
  data::Dataset db;
  data::GroupInfo gi;
};

Fixture Make() {
  synth::NamedDataset nd = synth::MakeShuttleLike();
  auto gi = data::GroupInfo::CreateForValues(
      nd.db, *nd.db.schema().IndexOf(nd.group_attr), nd.groups);
  SDADCS_CHECK(gi.ok());
  return {std::move(nd.db), std::move(gi).value()};
}

ContrastPattern PatternFor(const Fixture& f, const Itemset& itemset) {
  ContrastPattern p;
  p.itemset = itemset;
  GroupCounts gc =
      CountMatches(f.db, f.gi, itemset, f.gi.base_selection());
  p.counts = gc.counts;
  p.ComputeStats(f.gi, MeasureKind::kSupportDiff);
  return p;
}

TEST(SelectDiverseTest, NearDuplicateCoversCollapse) {
  Fixture f = Make();
  int attr1 = *f.db.schema().IndexOf("attr1");
  // Three nearly identical intervals plus one genuinely different one.
  std::vector<ContrastPattern> patterns = {
      PatternFor(f, Itemset({Item::Interval(attr1, 0.0, 54.0)})),
      PatternFor(f, Itemset({Item::Interval(attr1, 0.0, 55.0)})),
      PatternFor(f, Itemset({Item::Interval(attr1, 1.0, 54.0)})),
      PatternFor(f, Itemset({Item::Interval(attr1, 54.0, 130.0)})),
  };
  std::vector<ContrastPattern> kept =
      SelectDiverse(f.db, f.gi, patterns, 0.8);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].itemset.item(0).hi, 54.0);
  EXPECT_DOUBLE_EQ(kept[1].itemset.item(0).lo, 54.0);
}

TEST(SelectDiverseTest, LooseThresholdKeepsAll) {
  Fixture f = Make();
  int attr1 = *f.db.schema().IndexOf("attr1");
  std::vector<ContrastPattern> patterns = {
      PatternFor(f, Itemset({Item::Interval(attr1, 0.0, 54.0)})),
      PatternFor(f, Itemset({Item::Interval(attr1, 0.0, 55.0)})),
  };
  // 1.0 only drops exact-duplicate covers.
  std::vector<ContrastPattern> kept =
      SelectDiverse(f.db, f.gi, patterns, 1.0);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(SelectDiverseTest, PreservesOrderAndFirstWins) {
  Fixture f = Make();
  int attr1 = *f.db.schema().IndexOf("attr1");
  std::vector<ContrastPattern> patterns = {
      PatternFor(f, Itemset({Item::Interval(attr1, 0.0, 54.0)})),
      PatternFor(f, Itemset({Item::Interval(attr1, 0.0, 54.5)})),
  };
  std::vector<ContrastPattern> kept =
      SelectDiverse(f.db, f.gi, patterns, 0.5);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].itemset.item(0).hi, 54.0);  // the first
}

TEST(MeasureCoverOverlapTest, IdenticalAndDisjoint) {
  Fixture f = Make();
  int attr1 = *f.db.schema().IndexOf("attr1");
  ContrastPattern low = PatternFor(
      f, Itemset({Item::Interval(attr1, 0.0, 54.0)}));
  ContrastPattern high = PatternFor(
      f, Itemset({Item::Interval(attr1, 54.0, 130.0)}));
  CoverOverlap same = MeasureCoverOverlap(f.db, f.gi, {low, low});
  EXPECT_DOUBLE_EQ(same.max_jaccard, 1.0);
  CoverOverlap disjoint = MeasureCoverOverlap(f.db, f.gi, {low, high});
  EXPECT_DOUBLE_EQ(disjoint.max_jaccard, 0.0);
}

TEST(MeasureCoverOverlapTest, FewPatternsIsZero) {
  Fixture f = Make();
  CoverOverlap empty = MeasureCoverOverlap(f.db, f.gi, {});
  EXPECT_DOUBLE_EQ(empty.mean_jaccard, 0.0);
}

TEST(SelectDiverseTest, ShrinksNpOutputOverlap) {
  // The practical effect: NP output is flooded with overlapping strong
  // patterns; diverse selection cuts the mean cover overlap.
  Fixture f = Make();
  MinerConfig cfg;
  cfg.max_depth = 2;
  cfg.meaningful_pruning = false;
  cfg.attributes = {"attr1", "attr2", "attr9"};
  auto result = Miner(cfg).Mine(f.db, GroupsRequest(f.gi));
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->contrasts.size(), 3u);
  CoverOverlap before =
      MeasureCoverOverlap(f.db, f.gi, result->contrasts);
  std::vector<ContrastPattern> diverse =
      SelectDiverse(f.db, f.gi, result->contrasts, 0.5);
  ASSERT_FALSE(diverse.empty());
  CoverOverlap after = MeasureCoverOverlap(f.db, f.gi, diverse);
  EXPECT_LT(diverse.size(), result->contrasts.size());
  EXPECT_LE(after.max_jaccard, 0.5 + 1e-12);
  EXPECT_LE(after.mean_jaccard, before.mean_jaccard);
}

}  // namespace
}  // namespace sdadcs::core
