#include "core/report.h"

#include <gtest/gtest.h>

#include "common/requests.h"
#include "core/miner.h"
#include "synth/simulated.h"
#include "util/logging.h"

namespace sdadcs::core {
namespace {

using test_support::GroupsRequest;

struct Fixture {
  data::Dataset db;
  data::GroupInfo gi;
  MiningResult result;
};

Fixture MakeFixture() {
  Fixture f{synth::MakeSimulated4(1200), {}, {}};
  auto gi = data::GroupInfo::Create(f.db, 0);
  SDADCS_CHECK(gi.ok());
  f.gi = std::move(gi).value();
  MinerConfig cfg;
  cfg.max_depth = 2;
  auto result = Miner(cfg).Mine(f.db, GroupsRequest(f.gi));
  SDADCS_CHECK(result.ok());
  f.result = std::move(result).value();
  SDADCS_CHECK(!f.result.contrasts.empty());
  return f;
}

TEST(FormatPatternsTableTest, ContainsHeaderAndRows) {
  Fixture f = MakeFixture();
  std::string table =
      FormatPatternsTable(f.db, f.gi, f.result.contrasts, 5);
  EXPECT_NE(table.find("rank"), std::string::npos);
  EXPECT_NE(table.find("diff"), std::string::npos);
  EXPECT_NE(table.find(f.gi.group_name(0).substr(0, 6)),
            std::string::npos);
  EXPECT_NE(table.find("   1  "), std::string::npos);
}

TEST(FormatPatternsTableTest, LimitTruncatesWithEllipsisLine) {
  Fixture f = MakeFixture();
  if (f.result.contrasts.size() < 2) GTEST_SKIP();
  std::string table =
      FormatPatternsTable(f.db, f.gi, f.result.contrasts, 1);
  EXPECT_NE(table.find("more"), std::string::npos);
}

TEST(PatternsToCsvTest, ParsesBackAsCsv) {
  Fixture f = MakeFixture();
  std::string csv = PatternsToCsv(f.db, f.gi, f.result.contrasts);
  // Header + one line per pattern.
  size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, f.result.contrasts.size() + 1);
  EXPECT_NE(csv.find("diff,purity,p_value"), std::string::npos);
  EXPECT_NE(csv.find("Attr1"), std::string::npos);
}

TEST(PatternsToCsvTest, EmptyListHasHeaderOnly) {
  Fixture f = MakeFixture();
  std::string csv = PatternsToCsv(f.db, f.gi, {});
  // Group column order follows the GroupInfo; compare order-agnostic.
  std::string expected = "supp_" + f.gi.group_name(0) + ",supp_" +
                         f.gi.group_name(1) + ",diff,purity,p_value\n";
  EXPECT_EQ(csv, expected);
}

TEST(PatternsToJsonTest, WellFormedBrackets) {
  Fixture f = MakeFixture();
  std::string json = PatternsToJson(f.db, f.gi, f.result.contrasts);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"items\""), std::string::npos);
  EXPECT_NE(json.find("\"supports\""), std::string::npos);
  EXPECT_NE(json.find("\"p_value\""), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(PatternsToJsonTest, InfinityBecomesNull) {
  Fixture f = MakeFixture();
  ContrastPattern p;
  p.itemset = Itemset({Item::Interval(
      1, -std::numeric_limits<double>::infinity(), 0.5)});
  p.counts = {10, 10};
  p.ComputeStats(f.gi, MeasureKind::kSupportDiff);
  std::string json = PatternsToJson(f.db, f.gi, {p});
  EXPECT_NE(json.find("\"lo\": null"), std::string::npos);
}

TEST(SummarizeRunTest, MentionsCountsAndGroups) {
  Fixture f = MakeFixture();
  std::string summary = SummarizeRun(f.result);
  EXPECT_NE(summary.find("contrasts"), std::string::npos);
  EXPECT_NE(summary.find("Group1"), std::string::npos);
  EXPECT_NE(summary.find("partitions evaluated"), std::string::npos);
}

}  // namespace
}  // namespace sdadcs::core
