#include "core/search.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/support.h"
#include "util/logging.h"
#include "synth/simulated.h"

namespace sdadcs::core {
namespace {

TEST(GenerateLevelCandidatesTest, LevelOneIsSingletons) {
  auto c = GenerateLevelCandidates(1, {3, 5, 9}, {});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], (std::vector<int>{3}));
  EXPECT_EQ(c[2], (std::vector<int>{9}));
}

TEST(GenerateLevelCandidatesTest, RequiresAllSubsetsAlive) {
  std::vector<std::vector<int>> alive = {{1}, {2}, {3}};
  auto c2 = GenerateLevelCandidates(2, {1, 2, 3}, alive);
  EXPECT_EQ(c2.size(), 3u);  // {1,2}, {1,3}, {2,3}

  // Kill {2}: only {1,3} remains possible.
  std::vector<std::vector<int>> partial = {{1}, {3}};
  auto c2b = GenerateLevelCandidates(2, {1, 2, 3}, partial);
  ASSERT_EQ(c2b.size(), 1u);
  EXPECT_EQ(c2b[0], (std::vector<int>{1, 3}));
}

TEST(GenerateLevelCandidatesTest, LevelThreeJoin) {
  std::vector<std::vector<int>> alive = {{1, 2}, {1, 3}, {2, 3}};
  auto c3 = GenerateLevelCandidates(3, {1, 2, 3}, alive);
  ASSERT_EQ(c3.size(), 1u);
  EXPECT_EQ(c3[0], (std::vector<int>{1, 2, 3}));

  // Remove {2,3}: {1,2,3} loses a subset and is not generated.
  std::vector<std::vector<int>> partial = {{1, 2}, {1, 3}};
  EXPECT_TRUE(GenerateLevelCandidates(3, {1, 2, 3}, partial).empty());
}

TEST(GenerateLevelCandidatesTest, NoAliveNoCandidates) {
  EXPECT_TRUE(GenerateLevelCandidates(2, {1, 2, 3}, {}).empty());
}

class SearchHarness {
 public:
  explicit SearchHarness(data::Dataset db)
      : db_(std::move(db)), topk_(100, 0.1) {
    auto gi = data::GroupInfo::Create(db_, 0);
    SDADCS_CHECK(gi.ok());
    gi_ = std::make_unique<data::GroupInfo>(std::move(gi).value());
    cfg_.max_depth = 2;
    ctx_.db = &db_;
    ctx_.gi = gi_.get();
    ctx_.cfg = &cfg_;
    ctx_.prune_table = &table_;
    ctx_.topk = &topk_;
    ctx_.counters = &counters_;
    ctx_.group_sizes = GroupSizes(*gi_);
    for (size_t a = 0; a < db_.num_attributes(); ++a) {
      int attr = static_cast<int>(a);
      if (db_.is_continuous(attr)) {
        ctx_.root_bounds[attr] =
            ComputeRootBounds(db_, attr, gi_->base_selection());
      }
    }
  }

  MiningContext& ctx() { return ctx_; }
  TopK& topk() { return topk_; }

 private:
  data::Dataset db_;
  MinerConfig cfg_;
  std::unique_ptr<data::GroupInfo> gi_;
  PruneTable table_;
  TopK topk_;
  MiningCounters counters_;
  MiningContext ctx_;
};

TEST(LatticeSearchTest, XorSingleAttributeStaysAliveDespiteNoPatterns) {
  // The crux of multivariate discovery: {Attr1} alone finds nothing on
  // the X-shaped data, but the combination must still be generated.
  SearchHarness h(synth::MakeSimulated2(1200));
  LatticeSearch search(h.ctx());
  EXPECT_TRUE(search.MineCombo({1}));   // Attr1 (0 is Group)
  EXPECT_EQ(h.topk().size(), 0u);
  EXPECT_TRUE(search.MineCombo({1, 2}));
  EXPECT_GT(h.topk().size(), 0u);
}

TEST(LatticeSearchTest, PureAttributeComboGoesDead) {
  // Simulated 1: both halves of Attr1 are pure; the combination with
  // Attr2 must be suppressed by the pure entries in the prune table.
  SearchHarness h(synth::MakeSimulated1(1000));
  LatticeSearch search(h.ctx());
  search.MineCombo({1});
  size_t patterns_after_attr1 = h.topk().size();
  EXPECT_GT(patterns_after_attr1, 0u);
  uint64_t lookup_before = h.ctx().counters->pruned_lookup;
  search.MineCombo({1, 2});
  // Every cell of the joint space lies inside a pure half -> all pruned
  // via the lookup table, no new patterns.
  EXPECT_GT(h.ctx().counters->pruned_lookup, lookup_before);
  EXPECT_EQ(h.topk().size(), patterns_after_attr1);
}

TEST(LatticeSearchTest, RunHonorsMaxDepth) {
  SearchHarness h(synth::MakeSimulated4(800));
  h.ctx().cfg;  // depth already 2
  LatticeSearch search(h.ctx());
  search.Run({1, 2});
  for (const ContrastPattern& p : h.topk().Sorted()) {
    EXPECT_LE(p.itemset.size(), 2u);
  }
}

}  // namespace
}  // namespace sdadcs::core
